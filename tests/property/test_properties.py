"""Property-based tests (hypothesis) on the core data structures and on the
paper's central invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro import DeweyID, ValueFormula, build_summary, parse_pattern
from repro.canonical import canonical_model, is_satisfiable
from repro.containment import is_contained
from repro.patterns.semantics import evaluate_node_tuples
from repro.workloads.synthetic import SyntheticPatternConfig, generate_random_pattern
from repro.xmltree.generator import generate_uniform_tree

# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
dewey_components = st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=6)
constants = st.one_of(st.integers(min_value=-20, max_value=20), st.sampled_from(["a", "b", "pen", "z"]))


@st.composite
def formulas(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        constant = draw(constants)
        builder = draw(
            st.sampled_from(
                [
                    ValueFormula.eq,
                    ValueFormula.ne,
                    ValueFormula.lt,
                    ValueFormula.le,
                    ValueFormula.gt,
                    ValueFormula.ge,
                ]
            )
        )
        return builder(constant)
    left = draw(formulas(depth=depth - 1))
    right = draw(formulas(depth=depth - 1))
    return left.and_(right) if draw(st.booleans()) else left.or_(right)


def random_document(seed: int, labels=("a", "b", "c", "d")):
    return generate_uniform_tree(labels, max_depth=4, max_fanout=3, seed=seed)


# --------------------------------------------------------------------------- #
# Dewey identifiers
# --------------------------------------------------------------------------- #
class TestDeweyProperties:
    @given(dewey_components)
    @settings(max_examples=60, deadline=None)
    def test_string_round_trip(self, components):
        identifier = DeweyID(components)
        assert DeweyID.from_string(str(identifier)) == identifier

    @given(dewey_components, st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_child_then_parent_is_identity(self, components, ordinal):
        identifier = DeweyID(components)
        assert identifier.child(ordinal).parent() == identifier
        assert identifier.is_parent_of(identifier.child(ordinal))
        assert identifier.is_ancestor_of(identifier.child(ordinal))

    @given(dewey_components, dewey_components)
    @settings(max_examples=60, deadline=None)
    def test_ancestor_relation_is_antisymmetric(self, left_parts, right_parts):
        left, right = DeweyID(left_parts), DeweyID(right_parts)
        assert not (left.is_ancestor_of(right) and right.is_ancestor_of(left))
        if left.is_ancestor_of(right):
            assert left < right  # ancestors precede descendants in document order


# --------------------------------------------------------------------------- #
# value formulas
# --------------------------------------------------------------------------- #
class TestFormulaProperties:
    @given(formulas(), constants)
    @settings(max_examples=80, deadline=None)
    def test_negation_flips_evaluation(self, formula, value):
        assert formula.evaluate(value) != formula.negate().evaluate(value)

    @given(formulas(), formulas(), constants)
    @settings(max_examples=80, deadline=None)
    def test_connectives_match_boolean_semantics(self, left, right, value):
        assert left.and_(right).evaluate(value) == (
            left.evaluate(value) and right.evaluate(value)
        )
        assert left.or_(right).evaluate(value) == (
            left.evaluate(value) or right.evaluate(value)
        )

    @given(formulas(), formulas(), constants)
    @settings(max_examples=80, deadline=None)
    def test_implication_is_sound(self, left, right, value):
        if left.implies(right) and left.evaluate(value):
            assert right.evaluate(value)

    @given(formulas())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_through_text(self, formula):
        assert ValueFormula.parse(formula.to_text()).equivalent(formula)


# --------------------------------------------------------------------------- #
# summaries
# --------------------------------------------------------------------------- #
class TestSummaryProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_summary_has_one_node_per_document_path(self, seed):
        document = random_document(seed)
        summary = build_summary(document)
        assert {n.path for n in summary.iter_nodes()} == {
            n.path for n in document.iter_nodes()
        }
        assert summary.conforms(document)
        assert summary.size <= document.size

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_strong_edges_hold_on_the_document(self, seed):
        document = random_document(seed)
        summary = build_summary(document)
        for summary_node in summary.iter_nodes():
            if summary_node.parent is None or not summary_node.strong:
                continue
            for instance in document.nodes_on_path(summary_node.parent.path):
                assert any(
                    child.label == summary_node.label for child in instance.children
                )


# --------------------------------------------------------------------------- #
# canonical model and containment (Propositions 2.1 and 3.1)
# --------------------------------------------------------------------------- #
def _random_satisfiable_pattern(summary, seed, size, optional=0.3):
    config = SyntheticPatternConfig(
        size=size,
        optional_probability=optional,
        predicate_probability=0.15,
        wildcard_probability=0.15,
        return_count=1,
        store_attributes=(),
    )
    pattern = generate_random_pattern(summary, config, rng=random.Random(seed))
    for node in pattern.nodes():
        node.attributes = ()
    pattern.nodes()[-1].is_return = True
    return pattern


class TestCanonicalAndContainmentProperties:
    @given(st.integers(min_value=0, max_value=3_000), st.integers(min_value=2, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_satisfiable_patterns_have_canonical_trees(self, seed, size):
        document = random_document(seed)
        summary = build_summary(document)
        pattern = _random_satisfiable_pattern(summary, seed, size)
        assert is_satisfiable(pattern, summary)
        trees = canonical_model(pattern, summary, max_trees=100)
        assert trees
        # Prop. 2.1: canonical trees conform to the summary
        for tree in trees[:10]:
            for node in tree.nodes():
                assert summary.has_path(node.summary_node.path)

    @given(st.integers(min_value=0, max_value=3_000))
    @settings(max_examples=10, deadline=None)
    def test_pattern_results_on_document_are_sound(self, seed):
        # every tuple produced on a conforming document maps onto summary paths
        # associated with the pattern's return node (Prop. 2.1 / Prop. 3.7)
        document = random_document(seed)
        summary = build_summary(document)
        pattern = _random_satisfiable_pattern(summary, seed, 4, optional=0.0)
        from repro.canonical import annotate_paths

        annotate_paths(pattern, summary)
        return_node = pattern.return_nodes()[0]
        allowed = {
            summary.node_by_number(number).path for number in return_node.annotated_paths
        }
        for (node,) in evaluate_node_tuples(pattern, document.root):
            if node is not None:
                assert node.path in allowed

    @given(
        st.integers(min_value=0, max_value=2_000),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=8, deadline=None)
    def test_containment_decision_is_sound_on_documents(self, seed, size_left, size_right):
        # if p ⊆S q is decided positively, then p(d) ⊆ q(d) on conforming documents
        document = random_document(seed)
        summary = build_summary(document)
        left = _random_satisfiable_pattern(summary, seed + 1, size_left, optional=0.0)
        right = _random_satisfiable_pattern(summary, seed + 2, size_right, optional=0.0)
        if is_contained(left, right, summary, check_attributes=False):
            left_tuples = evaluate_node_tuples(left, document.root)
            right_tuples = evaluate_node_tuples(right, document.root)
            assert left_tuples <= right_tuples

    @given(st.integers(min_value=0, max_value=2_000), st.integers(min_value=2, max_value=5))
    @settings(max_examples=8, deadline=None)
    def test_self_containment_always_holds(self, seed, size):
        document = random_document(seed)
        summary = build_summary(document)
        pattern = _random_satisfiable_pattern(summary, seed, size)
        assert is_contained(pattern, pattern, summary)


# --------------------------------------------------------------------------- #
# pattern DSL round trip
# --------------------------------------------------------------------------- #
class TestPatternRoundTripProperties:
    @given(st.integers(min_value=0, max_value=5_000), st.integers(min_value=2, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_dsl_round_trip_of_random_patterns(self, seed, size):
        document = random_document(seed)
        summary = build_summary(document)
        config = SyntheticPatternConfig(size=size, return_count=2)
        pattern = generate_random_pattern(summary, config, rng=random.Random(seed))
        assert parse_pattern(pattern.to_text()) == pattern
