"""Property: incremental view DDL is indistinguishable from a rebuild.

Any interleaving of ``create_view`` / ``drop_view`` on a :class:`Database`
must leave the patched :class:`ViewCatalog` *index-identical* to a catalog
built from scratch over the surviving views — same name/position map, same
root-label, summary-path and attribute inverted indexes, same statistics —
and rewriting any query over the patched catalog must produce the same
rewritings the fresh catalog produces.  Meanwhile the patched catalog may
never have built more entries than one per ``create`` (the incremental
contract: survivors are patched around, not rebuilt).
"""

from __future__ import annotations

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, parse_pattern
from repro.rewriting.rewriter import Rewriter
from repro.views.catalog import ViewCatalog

_ALIAS = re.compile(r"[@#]\d+")

VIEW_POOL = [
    ("v_item", "site(//item[ID](/name[V]))"),
    ("v_keyword", "site(//keyword[ID,V])"),
    ("v_listitem", "site(//listitem[ID])"),
    ("v_mail", "site(//mail[ID])"),
    ("v_name", "site(//name[ID,V])"),
    ("v_descr", "site(//description[ID])"),
]

QUERY = "site(//item[ID](/name[V]))"


def _fingerprint(outcome):
    return sorted(
        (tuple(r.views_used), r.is_union, _ALIAS.sub("@N", r.plan.describe()))
        for r in outcome.rewritings
    )


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=len(VIEW_POOL) - 1), max_size=24))
def test_any_ddl_interleaving_matches_fresh_rebuild(auction_summary, ops):
    database = Database.from_summary(auction_summary)
    assert database.catalog is not None  # build before the DDL starts
    database.catalog.statistics()  # exercise incremental stats maintenance too
    creates = 0
    for slot in ops:
        name, pattern = VIEW_POOL[slot]
        if name in database.views:
            database.drop_view(name)
        else:
            database.create_view(pattern, name=name, materialize=False)
            creates += 1

    patched = database.catalog
    fresh = ViewCatalog(auction_summary, list(database.views))

    # 1. index identity, structure by structure
    assert patched._by_name == fresh._by_name
    assert patched._by_root_label == fresh._by_root_label
    assert patched._by_related_path == fresh._by_related_path
    assert patched._by_path_attribute == fresh._by_path_attribute
    assert [v.name for v in patched.views] == [v.name for v in fresh.views]

    # 2. statistics identity over the surviving views
    patched_stats = patched.statistics()
    fresh_stats = fresh.statistics()
    for view in database.views:
        assert patched_stats.view_rows(view.name) == fresh_stats.view_rows(view.name)
        assert patched_stats.view_sorted_column(
            view.name
        ) == fresh_stats.view_sorted_column(view.name)

    # 3. the incremental contract: one entry build per create, never more
    assert patched.entry_build_count == creates

    # 4. rewriting equivalence: patched and fresh catalogs answer alike
    query = parse_pattern(QUERY, name="q")
    patched_outcome = database.rewrite(query)
    fresh_outcome = Rewriter.from_catalog(fresh).rewrite(query)
    assert _fingerprint(patched_outcome) == _fingerprint(fresh_outcome)
