"""The fingerprint-keyed plan cache behind ``Database.query``.

Contract under test: repeated unprepared queries skip the rewriting search
(observable through the hit counter and through the rewriter), results are
identical to the uncached path, and any view DDL invalidates the whole
cache before a stale plan can run.
"""

from __future__ import annotations

import pytest

from repro import Database, parse_parenthesized, parse_pattern
from repro.errors import RewritingError


@pytest.fixture()
def database():
    document = parse_parenthesized(
        'site(item(name="pen") item(name="ink") item(name="pad"))'
    )
    db = Database(document)
    db.create_view("site(//item[ID,V])", name="items")
    db.create_view("site(//name[ID,V])", name="names")
    return db


def test_repeated_queries_hit_the_cache(database):
    first = database.query("site(//item[ID,V])")
    assert database.plan_cache.info()["misses"] == 1
    second = database.query("site(//item[ID,V])")
    info = database.plan_cache.info()
    assert info["hits"] == 1 and info["size"] == 1
    assert first.same_contents(second)
    assert first.rows == second.rows, "cached plan must be the same plan"


def test_cache_key_is_canonical_not_textual(database):
    database.query("site(//item[ID,V])", name="first-name")
    # different pattern *name*, same canonical structure: must hit
    database.query("site(//item[ID,V])", name="second-name")
    assert database.plan_cache.hits == 1
    # structurally different query: must miss
    database.query("site(//name[ID,V])")
    assert database.plan_cache.misses == 2


def test_cached_query_skips_the_rewriting_search(database, monkeypatch):
    database.query("site(//item[ID,V])")
    def exploding_rewrite(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("a cache hit must not re-run the rewriting search")
    monkeypatch.setattr(database.rewriter, "rewrite", exploding_rewrite)
    result = database.query("site(//item[ID,V])")
    assert len(result) == 3


def test_view_ddl_invalidates_the_cache(database):
    baseline = database.query("site(//item[ID,V])")
    database.create_view("site(//price[ID,V])", name="prices")
    result = database.query("site(//item[ID,V])")
    info = database.plan_cache.info()
    assert info["invalidations"] == 1
    assert info["hits"] == 0 and info["misses"] == 2
    assert result.same_contents(baseline)


def test_dropping_a_view_never_serves_its_plan(database):
    database.query("site(//item[ID,V])")  # cached plan scans 'items'
    database.drop_view("items")
    with pytest.raises(RewritingError, match="no equivalent rewriting"):
        database.query("site(//item[ID,V])")


def test_failed_queries_are_not_cached():
    document = parse_parenthesized('site(item(price=3) item(price=5))')
    db = Database(document)
    db.create_view("site(//item[ID])", name="items")
    with pytest.raises(RewritingError):
        db.query("site(//price[ID,V])")
    assert len(db.plan_cache) == 0
    # a not-found result must not stick: later DDL makes the query answerable
    db.create_view("site(//price[ID,V])", name="prices")
    assert len(db.query("site(//price[ID,V])")) == 2


def test_lru_bound_evicts_oldest(database):
    database.plan_cache.maxsize = 1
    database.query("site(//item[ID,V])")
    database.query("site(//name[ID,V])")  # evicts the item plan
    assert len(database.plan_cache) == 1
    database.query("site(//item[ID,V])")
    assert database.plan_cache.hits == 0 and database.plan_cache.misses == 3


def test_prepared_queries_remain_independent(database):
    prepared = database.prepare("site(//item[ID,V])")
    assert len(database.plan_cache) == 0, "prepare() pins per call site"
    assert prepared.run().same_contents(database.query("site(//item[ID,V])"))


def test_query_many_sequential_consults_the_cache(database):
    workload = ["site(//item[ID,V])", "site(//name[ID,V])", "site(//item[ID,V])"]
    first = database.query_many(workload)
    info = database.plan_cache.info()
    # two distinct fingerprints: the duplicate is a lookup miss only once
    assert info["misses"] == 3 and info["hits"] == 0 and info["size"] == 2

    second = database.query_many(workload)
    info = database.plan_cache.info()
    assert info["hits"] == 3 and info["misses"] == 3, (
        "a repeated workload must be served entirely from the plan cache"
    )
    for left, right in zip(first, second):
        assert left.same_contents(right)


def test_query_many_cache_interoperates_with_query(database):
    database.query("site(//item[ID,V])")
    database.query_many(["site(//item[ID,V])", "site(//name[ID,V])"])
    info = database.plan_cache.info()
    assert info["hits"] == 1, "query_many must reuse plans cached by query()"
    assert info["misses"] == 2
    database.query("site(//name[ID,V])")
    assert database.plan_cache.hits == 2, (
        "query() must reuse plans cached by query_many()"
    )


def test_query_many_duplicate_misses_plan_once(database, monkeypatch):
    calls = []
    original = database.rewriter.rewrite_many

    def counting_rewrite_many(patterns, *args, **kwargs):
        calls.append(len(patterns))
        return original(patterns, *args, **kwargs)

    monkeypatch.setattr(database.rewriter, "rewrite_many", counting_rewrite_many)
    database.query_many(["site(//item[ID,V])"] * 3)
    assert calls == [1], (
        "three copies of one query share one fingerprint: the rewriting "
        "search must see it exactly once"
    )


def test_query_matches_query_pattern_object(database):
    pattern = parse_pattern("site(//item[ID,V])", name="obj")
    assert database.query(pattern).same_contents(
        database.query("site(//item[ID,V])")
    )
    assert database.plan_cache.hits == 1
