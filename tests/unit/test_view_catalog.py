"""ViewCatalog pruning correctness and SummaryIndex label-map lookups."""

from __future__ import annotations

import pytest

from repro import MaterializedView, annotate_paths, parse_pattern
from repro.canonical.model import annotate_paths as annotate
from repro.rewriting.algorithm import RewritingConfig, RewritingSearch
from repro.rewriting.candidates import initial_candidate
from repro.rewriting.preprocessing import view_is_useful
from repro.summary.index import SummaryIndex
from repro.views.catalog import ViewCatalog
from repro.workloads.synthetic import generate_random_views, seed_tag_views


def _views_for(summary):
    patterns = list(seed_tag_views(summary)) + generate_random_views(
        summary, count=12, seed=4
    )
    return [
        MaterializedView(pattern, name=f"cv{index}")
        for index, pattern in enumerate(patterns)
    ]


def _queries_for(summary, make_pattern):
    root = summary.root.label
    queries = [
        make_pattern(f"{root}(//item[ID])", name="q-item"),
        make_pattern(f"{root}(//name[ID,V])", name="q-name"),
        make_pattern(f"{root}(//item[ID](/name[V]))", name="q-join"),
        make_pattern(f"{root}(//mail(//text[ID]))", name="q-deep"),
        make_pattern(f"{root}[ID]", name="q-root-only"),
    ]
    for query in queries:
        annotate_paths(query, summary)
    return queries


class TestCatalogPruningMatchesProp34:
    def test_candidates_equal_seed_usefulness_filter(
        self, auction_summary, make_pattern
    ):
        views = _views_for(auction_summary)
        catalog = ViewCatalog(auction_summary, views)
        index = SummaryIndex(auction_summary)
        for query in _queries_for(auction_summary, make_pattern):
            expected = []
            for view in views:
                candidate = initial_candidate(view)
                annotate(candidate.pattern, auction_summary)
                if view_is_useful(candidate.pattern, query, index):
                    expected.append(view.name)
            got = [view.name for view in catalog.candidate_views(query)]
            assert got == expected, query.name

    def test_single_node_query_keeps_every_view(self, auction_summary, make_pattern):
        views = _views_for(auction_summary)
        catalog = ViewCatalog(auction_summary, views)
        query = make_pattern("site[ID]", name="q-root")
        annotate_paths(query, auction_summary)
        assert len(catalog.candidate_views(query)) == len(views)

    def test_pruned_views_never_admit_a_rewriting(
        self, auction_summary, make_pattern, monkeypatch
    ):
        """Soundness: a view the catalog prunes must be useless on its own.

        The search's own Prop. 3.4 filter is disabled so pruned views really
        reach the alignment / join machinery — the assertion is that even
        then they produce no rewriting."""
        import repro.rewriting.algorithm as algorithm_module

        monkeypatch.setattr(
            algorithm_module, "view_is_useful", lambda *args, **kwargs: True
        )
        views = _views_for(auction_summary)
        catalog = ViewCatalog(auction_summary, views)
        config = RewritingConfig(time_budget_seconds=5.0, max_plan_size=3)
        for query in _queries_for(auction_summary, make_pattern):
            kept = {view.name for view in catalog.candidate_views(query)}
            pruned = [view for view in views if view.name not in kept]
            for view in pruned:
                search = RewritingSearch(query, auction_summary, [view], config)
                assert search.run() == [], (
                    f"pruned view {view.name!r} rewrote query {query.name!r}"
                )

    def test_instantiated_candidates_are_independent(self, auction_summary, make_pattern):
        views = _views_for(auction_summary)[:3]
        catalog = ViewCatalog(auction_summary, views)
        query = make_pattern("site(//item[ID])", name="q")
        annotate_paths(query, auction_summary)
        first = dict(catalog.initial_candidates(query))
        second = dict(catalog.initial_candidates(query))
        for view, candidate in first.items():
            other = second[view]
            assert candidate.pattern is not other.pattern
            # clones carry the prototype's annotations without re-annotation
            for node, twin in zip(candidate.pattern.nodes(), other.pattern.nodes()):
                assert node.annotated_paths == twin.annotated_paths
            # mutating one clone must not leak into the next
            candidate.pattern.root.add_child("mutation")
            assert len(other.pattern.nodes()) != len(candidate.pattern.nodes())


class TestCatalogSecondaryIndexes:
    def test_root_label_index(self, auction_summary):
        views = _views_for(auction_summary)
        catalog = ViewCatalog(auction_summary, views)
        assert catalog.views_with_root_label("site") == views
        assert catalog.views_with_root_label("nosuch") == []

    def test_attribute_index_reflects_offered_attributes(self, auction_summary):
        pattern = parse_pattern("site(//item[ID,V])", name="item-idv")
        view = MaterializedView(pattern, name="item-view")
        catalog = ViewCatalog(auction_summary, [view])
        item_number = auction_summary.node_by_path("/site/regions/asia/item").number
        assert catalog.views_with_attribute(item_number, "ID") == [view]
        assert catalog.views_with_attribute(item_number, "C") == []
        name_number = auction_summary.node_by_path("/site/regions/asia/item/name").number
        assert catalog.views_with_attribute(name_number, "ID") == []

    def test_hit_sets(self, auction_summary):
        pattern = parse_pattern("site(//item[ID])", name="item-id")
        view = MaterializedView(pattern, name="hv")
        catalog = ViewCatalog(auction_summary, [view])
        item_number = auction_summary.node_by_path("/site/regions/asia/item").number
        assert catalog.hit_set("hv") == frozenset({item_number})
        with pytest.raises(KeyError):
            catalog.hit_set("missing")


class TestSummaryIndexLabelMaps:
    def test_label_map_matches_summary_scan(self, auction_summary, auction_index):
        for label in auction_index.labels:
            expected = {
                node.number for node in auction_summary.nodes_with_label(label)
            }
            assert auction_index.numbers_with_label(label) == expected

    def test_wildcard_and_missing_labels(self, auction_summary, auction_index):
        assert auction_index.numbers_with_label("*") == frozenset(
            node.number for node in auction_summary.iter_nodes()
        )
        assert auction_index.numbers_with_label("nosuch") == frozenset()

    def test_ancestor_descendant_sets_are_consistent(self, auction_index):
        for number in auction_index.numbers_with_label("*"):
            for ancestor in auction_index.ancestors(number):
                assert number in auction_index.descendants(ancestor)
                assert auction_index.is_ancestor(ancestor, number)
