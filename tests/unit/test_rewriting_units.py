"""Unit tests for the rewriting building blocks: candidates, pruning, fusion."""

import pytest

from repro import MaterializedView, build_summary, parse_parenthesized, parse_pattern
from repro.canonical import annotate_paths
from repro.patterns.pattern import Axis
from repro.rewriting.candidates import initial_candidate
from repro.rewriting.fusion import bare_chain, copy_with_map, fuse_equality, fuse_structural
from repro.rewriting.preprocessing import (
    add_virtual_ids,
    query_path_targets,
    unfold_content,
    view_is_useful,
)
from repro.summary.index import SummaryIndex


@pytest.fixture(scope="module")
def store_doc():
    return parse_parenthesized(
        'site(regions(item(name="pen" description(listitem(keyword="gold")))'
        ' item(name="ink" description(listitem(keyword="blue"))))'
        ' people(person(age="30")))'
    )


@pytest.fixture(scope="module")
def store_summary(store_doc):
    return build_summary(store_doc)


@pytest.fixture(scope="module")
def store_index(store_summary):
    return SummaryIndex(store_summary)


class TestInitialCandidates:
    def test_columns_for_flat_return_nodes(self, store_doc, store_summary):
        view = MaterializedView(
            parse_pattern("site(//item[ID](/name[V]))", name="v"), store_doc, name="v"
        )
        candidate = initial_candidate(view, alias="v0")
        item, name = candidate.pattern.return_nodes()
        assert candidate.column_for(item, "ID") == "v0.ID1"
        assert candidate.column_for(name, "V") == "v0.V2"
        assert candidate.size == 1

    def test_nested_return_nodes_become_lazy_unnest_columns(self, store_doc):
        view = MaterializedView(
            parse_pattern("site(//item[ID](//?~listitem(/keyword[V])))", name="v"),
            store_doc,
            name="v",
        )
        candidate = initial_candidate(view, alias="v0")
        keyword = [n for n in candidate.pattern.nodes() if n.label == "keyword"][0]
        assert candidate.has_attribute(keyword, "V")
        assert candidate.column_for(keyword, "V") is None  # lazy, not materialised
        materialised, column = candidate.ensure_column(keyword, "V")
        assert column == "V2"
        assert materialised.column_for(keyword, "V") == "V2"

    def test_ensure_column_unknown_attribute(self, store_doc):
        view = MaterializedView(parse_pattern("site(//item[ID])", name="v"), store_doc, name="v")
        candidate = initial_candidate(view)
        item = candidate.pattern.return_nodes()[0]
        from repro.errors import RewritingError

        with pytest.raises(RewritingError):
            candidate.ensure_column(item, "V")


class TestPreprocessing:
    def test_view_pruning_prop34(self, store_summary, store_index):
        query = annotate_paths(
            parse_pattern("site(//item[ID](/name[V]))", name="q"), store_summary
        )
        related = annotate_paths(
            parse_pattern("site(//name[V])", name="v1"), store_summary
        )
        descendant_related = annotate_paths(
            parse_pattern("site(//keyword[V])", name="v2"), store_summary
        )
        unrelated = annotate_paths(
            parse_pattern("site(//age[V])", name="v3"), store_summary
        )
        assert view_is_useful(related, query, store_index)
        # keyword nodes are descendants of item nodes, so that view stays useful
        assert view_is_useful(descendant_related, query, store_index)
        # person ages share no ancestor/descendant line with the query nodes
        assert not view_is_useful(unrelated, query, store_index)

    def test_content_unfolding_adds_lazy_navigation(self, store_doc, store_summary, store_index):
        view = MaterializedView(
            parse_pattern("site(//description[ID,C])", name="v"), store_doc, name="v"
        )
        candidate = initial_candidate(view, alias="v0")
        annotate_paths(candidate.pattern, store_summary)
        query = annotate_paths(
            parse_pattern("site(//keyword[V])", name="q"), store_summary
        )
        unfolded = unfold_content(candidate, query_path_targets(query), store_index)
        keyword_nodes = [n for n in unfolded.pattern.nodes() if n.label == "keyword"]
        assert keyword_nodes, "unfolding should add a keyword branch"
        assert unfolded.has_attribute(keyword_nodes[0], "V")
        # the added branch is optional, so the pattern's semantics is unchanged
        assert keyword_nodes[0].optional or keyword_nodes[0].parent.optional

    def test_virtual_ids(self, store_doc, store_summary, store_index):
        view = MaterializedView(
            parse_pattern("site(/regions(/item(/name[ID,V])))", name="v"), store_doc, name="v"
        )
        candidate = initial_candidate(view, alias="v0")
        annotate_paths(candidate.pattern, store_summary)
        enriched = add_virtual_ids(candidate, store_index, derives_parent=True)
        item = [n for n in enriched.pattern.nodes() if n.label == "item"][0]
        assert enriched.has_attribute(item, "ID")
        # without a parent-derivable scheme nothing is added
        plain = add_virtual_ids(candidate, store_index, derives_parent=False)
        assert not plain.has_attribute(item, "ID")


class TestFusion:
    def test_copy_with_map_preserves_structure(self):
        pattern = parse_pattern("a(//b[ID]{v>1}(/?c))")
        clone, mapping = copy_with_map(pattern)
        assert clone == pattern
        for original, copied in mapping.items():
            assert copied.label in {n.label for n in pattern.nodes()}

    def test_bare_chain_detection(self):
        pattern = parse_pattern("a(/b(/c[ID]))")
        c_node = pattern.nodes()[2]
        chain = bare_chain(c_node)
        assert [n.label for n in chain] == ["b", "a"]
        branching = parse_pattern("a(/b[V](/c[ID]))")
        assert bare_chain(branching.nodes()[2]) is None

    def test_equality_fusion_unifies_nodes(self, store_summary, store_index):
        left = annotate_paths(parse_pattern("site(//item[ID](/name[V]))"), store_summary)
        right = annotate_paths(parse_pattern("site(//item[ID](/description))"), store_summary)
        left_node = left.return_nodes()[0]
        right_node = right.return_nodes()[0]
        result = fuse_equality(left, left_node, right, right_node, store_summary, store_index)
        assert result is not None
        labels = [n.label for n in result.pattern.nodes()]
        assert labels.count("item") == 1
        assert "description" in labels and "name" in labels

    def test_equality_fusion_rejects_label_conflict(self, store_summary, store_index):
        left = annotate_paths(parse_pattern("site(//item[ID])"), store_summary)
        right = annotate_paths(parse_pattern("site(//name[ID])"), store_summary)
        assert (
            fuse_equality(
                left, left.return_nodes()[0], right, right.return_nodes()[0],
                store_summary, store_index,
            )
            is None
        )

    def test_structural_fusion_grafts_subtree(self, store_summary, store_index):
        upper = annotate_paths(parse_pattern("site(//item[ID])"), store_summary)
        lower = annotate_paths(parse_pattern("site(//keyword[ID,V])"), store_summary)
        result = fuse_structural(
            upper,
            upper.return_nodes()[0],
            lower,
            lower.return_nodes()[0],
            Axis.DESCENDANT,
            store_summary,
            store_index,
        )
        assert result is not None
        keyword = [n for n in result.pattern.nodes() if n.label == "keyword"][0]
        assert keyword.parent.label == "item"
        assert keyword.axis is Axis.DESCENDANT

    def test_structural_fusion_rejects_impossible_axis(self, store_summary, store_index):
        upper = annotate_paths(parse_pattern("site(//keyword[ID])"), store_summary)
        lower = annotate_paths(parse_pattern("site(//item[ID,V])"), store_summary)
        # items are never descendants of keywords
        assert (
            fuse_structural(
                upper,
                upper.return_nodes()[0],
                lower,
                lower.return_nodes()[0],
                Axis.DESCENDANT,
                store_summary,
                store_index,
            )
            is None
        )

    def test_fusion_makes_joined_nodes_required(self, store_summary, store_index):
        left = annotate_paths(parse_pattern("site(//?item[ID])"), store_summary)
        right = annotate_paths(parse_pattern("site(//item[ID](/name[V]))"), store_summary)
        result = fuse_equality(
            left, left.return_nodes()[0], right, right.return_nodes()[0],
            store_summary, store_index,
        )
        assert result is not None
        item = [n for n in result.pattern.nodes() if n.label == "item"][0]
        assert not item.optional


class TestAttributePrefilter:
    """Prop. 3.7 pre-filtering: skipped alignments, unchanged results."""

    def _rewrite(self, summary, views, query, prefilter):
        from repro.containment.core import clear_containment_cache
        from repro.rewriting.algorithm import RewritingConfig, RewritingSearch
        from repro.views.catalog import ViewCatalog

        clear_containment_cache()
        config = RewritingConfig(
            max_rewritings=4, enable_attribute_prefilter=prefilter
        )
        search = RewritingSearch(
            query, summary, views, config,
            catalog=ViewCatalog(summary, views),
        )
        return search.run(), search.statistics

    def test_prefilter_prunes_without_changing_results(self, store_summary):
        views = [
            MaterializedView(parse_pattern("site(//item[ID,V])", name="v_item")),
            MaterializedView(parse_pattern("site(//item[ID])", name="v_item_id")),
            MaterializedView(parse_pattern("site(//name[ID])", name="v_name_id")),
        ]
        query = parse_pattern("site(//item[ID,V])")
        with_filter, stats_on = self._rewrite(store_summary, views, query, True)
        without, stats_off = self._rewrite(store_summary, views, query, False)
        def key(rewritings):
            return [(r.views_used, r.is_union) for r in rewritings]

        assert key(with_filter) == key(without)
        # v_item_id / v_name_id cannot supply V; their alignments are skipped
        assert stats_on.alignments_pruned > 0
        assert stats_off.alignments_pruned == 0

    def test_suppliers_back_the_feasibility_check(self, store_summary):
        views = [
            MaterializedView(parse_pattern("site(//name[ID])", name="v_name_id")),
        ]
        query = parse_pattern("site(//item[ID,V])")
        rewritings, stats = self._rewrite(store_summary, views, query, True)
        assert rewritings == []

    def test_prefilter_keeps_attribute_pooling_joins(self, store_summary):
        """Equality fusion pools attributes from both sides onto the
        unified node, so a vA ⋈= vB candidate can supply {ID,V,L} although
        neither view does alone.  A per-attribute-SET pre-filter wrongly
        pruned exactly these candidates (regression: the only full
        single-view supplier below fails containment because of its
        predicate, so pruning the pooling join lost every rewriting)."""
        views = [
            MaterializedView(parse_pattern("site(//name[ID,V])", name="vA")),
            MaterializedView(parse_pattern("site(//name[ID,L])", name="vB")),
            MaterializedView(
                parse_pattern('site(//name[ID,V,L]{v="pen"})', name="vC")
            ),
        ]
        query = parse_pattern("site(//name[ID,V,L])")
        with_filter, stats_on = self._rewrite(store_summary, views, query, True)
        without, _ = self._rewrite(store_summary, views, query, False)
        def key(rewritings):
            return sorted((r.views_used, r.is_union) for r in rewritings)

        assert with_filter, "the vA ⋈= vB rewriting must survive the pre-filter"
        assert key(with_filter) == key(without)
