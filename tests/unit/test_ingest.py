"""Units for the live-document layer: change log, streaming, maintenance.

The tentpole contract under test here, piece by piece (the stateful
equivalence harness in ``tests/property/test_live_maintenance.py`` then
drives random interleavings of the whole):

* the change log validates itself — CRC per record, contiguous LSNs,
  torn tails replay cleanly, everything else raises the typed
  :class:`~repro.errors.ChangeLogCorruptError`;
* streamed fragments convert exactly like parsed documents;
* subtree inserts and deletes never reuse Dewey IDs (ORDPATH-style gaps);
* the summary's incremental counters match a from-scratch
  :func:`~repro.summary.build_summary` — paths, counts, *and* the
  strong / one-to-one edge flags;
* :meth:`MaterializedView.apply_delta` is row-identical to
  ``materialize`` (and falls back to it when the splice gate fails);
* value-index probes over a delta-maintained extent answer exactly like
  probes over a freshly rebuilt one (indexes rebuild lazily — the new
  relation simply has no cached batch).
"""

from __future__ import annotations

import json

import pytest

from repro import (
    ChangeLog,
    ChangeLogCorruptError,
    Database,
    IngestError,
    SubtreeChange,
    XMLNode,
    build_summary,
    decode_subtree,
    encode_subtree,
    iter_stream_subtrees,
    parse_parenthesized,
    parse_pattern,
)
from repro.errors import SessionError, XMLError
from repro.views.delta import can_apply_delta
from repro.views.view import MaterializedView

DOC_TEXT = (
    'site(regions(asia(item(name="pen" quantity=2) item(name="ink")))'
    '     people(person(name="bob")))'
)


def _db(maintenance="incremental"):
    return Database(parse_parenthesized(DOC_TEXT, name="live"), maintenance=maintenance)


# --------------------------------------------------------------------------- #
# change log
# --------------------------------------------------------------------------- #
class TestChangeLog:
    def test_round_trip_and_reopen_continues_lsn(self, tmp_path):
        path = tmp_path / "doc.log"
        with ChangeLog(path) as log:
            assert log.append("load", {"name": "d"}).lsn == 1
            assert log.append("insert", {"i": 1}).lsn == 2
        with ChangeLog(path) as log:  # reopen: validates, then continues
            assert log.last_lsn == 2
            assert log.append("delete", {"d": 1}).lsn == 3
        assert [r.type for r in ChangeLog.read(path)] == ["load", "insert", "delete"]

    def test_torn_tail_is_a_clean_crash(self, tmp_path):
        path = tmp_path / "doc.log"
        with ChangeLog(path) as log:
            log.append("load", {})
            log.append("insert", {"i": 1})
        with open(path, "a") as handle:
            handle.write('{"lsn": 3, "type": "ins')  # crash mid-append
        assert len(ChangeLog.read(path)) == 2  # replay stops at the tear
        with ChangeLog(path) as log:  # reopen truncates the tear and resumes
            assert log.append("insert", {"i": 2}).lsn == 3
        assert len(ChangeLog.read(path)) == 3

    def test_crc_mismatch_is_corruption(self, tmp_path):
        path = tmp_path / "doc.log"
        with ChangeLog(path) as log:
            log.append("load", {})
            log.append("insert", {"value": "original"})
            log.append("delete", {})
        lines = path.read_bytes().split(b"\n")
        lines[1] = lines[1].replace(b"original", b"tampered")
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(ChangeLogCorruptError, match="CRC"):
            ChangeLog.read(path)

    def test_lsn_gap_is_corruption(self, tmp_path):
        path = tmp_path / "doc.log"
        with ChangeLog(path) as log:
            log.append("load", {})
            log.append("insert", {"i": 1})
            log.append("insert", {"i": 2})
        lines = path.read_bytes().split(b"\n")
        del lines[1]  # drop a middle record entirely
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(ChangeLogCorruptError, match="LSN"):
            ChangeLog.read(path)

    def test_mid_file_garbage_is_corruption_not_a_tear(self, tmp_path):
        path = tmp_path / "doc.log"
        with ChangeLog(path) as log:
            log.append("load", {})
            log.append("insert", {"i": 1})
        lines = path.read_bytes().split(b"\n")
        lines[0] = b"not json at all"
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(ChangeLogCorruptError, match="malformed"):
            ChangeLog.read(path)

    def test_record_lines_are_plain_jsonl(self, tmp_path):
        path = tmp_path / "doc.log"
        with ChangeLog(path) as log:
            log.append("insert", {"parent": "1.2"})
        data = json.loads(path.read_text().splitlines()[0])
        assert set(data) == {"lsn", "type", "payload", "crc"}

    def test_subtree_codec_round_trips(self):
        node = XMLNode("item", None, [XMLNode("name", "pen"), XMLNode("qty", 3)])
        clone = decode_subtree(encode_subtree(node))
        assert clone.label == "item"
        assert [(c.label, c.value) for c in clone.children] == [
            ("name", "pen"),
            ("qty", 3),
        ]
        with pytest.raises(ChangeLogCorruptError):
            decode_subtree(["missing-children-slot"])


# --------------------------------------------------------------------------- #
# streaming ingestion
# --------------------------------------------------------------------------- #
class TestStreaming:
    def test_chunk_boundaries_are_irrelevant(self):
        text = '<item id="4"><name>pen</name></item><item><name>ink</name></item>'
        whole = list(iter_stream_subtrees([text]))
        for cut in range(1, len(text) - 1, 7):
            split = list(iter_stream_subtrees([text[:cut], text[cut:]]))
            assert [encode_subtree(s) for s in split] == [
                encode_subtree(w) for w in whole
            ]

    def test_conversion_matches_the_document_parser(self):
        streamed = next(iter(iter_stream_subtrees(['<a x="1">hi<b>2</b></a>'])))
        assert streamed.label == "a"
        assert streamed.value == "hi"
        assert [(c.label, c.value) for c in streamed.children] == [
            ("@x", 1),
            ("b", 2),
        ]

    def test_malformed_stream_raises_after_complete_elements(self):
        chunks = ["<item><name>pen</name></item><item></oops>"]
        seen = []
        with pytest.raises(IngestError):
            for subtree in iter_stream_subtrees(chunks):
                seen.append(subtree)
        assert [s.label for s in seen] == ["item"]  # the complete one survived


# --------------------------------------------------------------------------- #
# document mutations: identifier discipline
# --------------------------------------------------------------------------- #
class TestDeweyDiscipline:
    def test_inserts_extend_sibling_ordinals(self):
        db = _db()
        asia = db.document.nodes_on_path("/site/regions/asia")[0]
        node = db.insert_subtree(asia, XMLNode("item"))
        assert node.dewey == asia.dewey.child(3)  # after the two seed items

    def test_deleted_ordinals_are_never_reused(self):
        db = _db()
        asia = db.document.nodes_on_path("/site/regions/asia")[0]
        doomed = db.insert_subtree(asia, XMLNode("item"))
        db.delete_subtree(doomed)
        replacement = db.insert_subtree(asia, XMLNode("item"))
        assert replacement.dewey.components[-1] > doomed.dewey.components[-1]
        assert not db.document.has_id(doomed.dewey)

    def test_root_deletion_and_foreign_nodes_are_rejected(self):
        db = _db()
        with pytest.raises(XMLError):
            db.delete_subtree(db.document.root)
        with pytest.raises(XMLError):
            db.insert_subtree(XMLNode("orphan"), XMLNode("child"))

    def test_summary_only_sessions_cannot_mutate(self):
        db = Database.from_summary(build_summary(parse_parenthesized(DOC_TEXT)))
        with pytest.raises(SessionError):
            db.insert_subtree("1", XMLNode("item"))


# --------------------------------------------------------------------------- #
# incremental summary maintenance
# --------------------------------------------------------------------------- #
def _summary_snapshot(summary):
    return {
        node.path: (node.instance_count, node.strong, node.one_to_one)
        for node in summary.iter_nodes()
    }


class TestSummaryMaintenance:
    def test_counts_paths_and_flags_track_a_fresh_build(self):
        db = _db()
        asia = db.document.nodes_on_path("/site/regions/asia")[0]
        # new path (wingspan), flag-changing second person, then deletions
        added = [
            db.insert_subtree(
                asia, XMLNode("item", None, [XMLNode("wingspan", 9)])
            ),
            db.insert_subtree(
                db.document.nodes_on_path("/site/people")[0],
                XMLNode("person", None, [XMLNode("name", "eve"), XMLNode("age", 4)]),
            ),
        ]
        assert _summary_snapshot(db.summary) == _summary_snapshot(
            build_summary(db.document)
        )
        for node in added:
            db.delete_subtree(node)
        assert _summary_snapshot(db.summary) == _summary_snapshot(
            build_summary(db.document)
        )
        assert db.maintenance_stats["summary_rebuilt"] == 0

    def test_retired_paths_leave_numbers_unreused(self):
        db = _db()
        asia = db.document.nodes_on_path("/site/regions/asia")[0]
        first = db.insert_subtree(asia, XMLNode("gadget"))
        number = db.summary.node_by_path("/site/regions/asia/gadget").number
        db.delete_subtree(first)
        assert not db.summary.has_path("/site/regions/asia/gadget")
        db.insert_subtree(asia, XMLNode("widget"))
        fresh = db.summary.node_by_path("/site/regions/asia/widget").number
        assert fresh > number  # append-only numbering: retired numbers stay dead


# --------------------------------------------------------------------------- #
# extent delta maintenance
# --------------------------------------------------------------------------- #
class TestExtentDelta:
    def test_delta_gate_rejects_non_chain_and_unpinned_shapes(self):
        doc = parse_parenthesized(DOC_TEXT)
        chain = MaterializedView(
            parse_pattern("site(//item[ID](/name[V]))", name="c"), doc
        )
        assert can_apply_delta(chain) is not None
        branchy = MaterializedView(
            parse_pattern("site(//item[ID](/name[V], /quantity[V]))", name="b"), doc
        )
        assert can_apply_delta(branchy) is None
        root_pinned = MaterializedView(parse_pattern("site[ID]", name="r"), doc)
        assert can_apply_delta(root_pinned) is None

    def test_ineligible_views_fall_back_to_rematerialize(self):
        db = _db()
        db.create_view("site(//item[ID](/name[V], /quantity[V]))", name="branchy")
        asia = db.document.nodes_on_path("/site/regions/asia")[0]
        db.insert_subtree(asia, XMLNode("item", None, [XMLNode("name", "new")]))
        assert db.maintenance_stats["rematerialized"] == 1
        assert db.maintenance_stats["delta_applied"] == 0

    def test_rebuild_mode_is_the_oracle(self):
        db = _db(maintenance="rebuild")
        db.create_view("site(//item[ID](/name[V]))", name="items")
        asia = db.document.nodes_on_path("/site/regions/asia")[0]
        db.insert_subtree(asia, XMLNode("item", None, [XMLNode("name", "new")]))
        assert db.maintenance_stats["delta_applied"] == 0
        assert db.maintenance_stats["rematerialized"] == 1
        assert db.maintenance_stats["summary_rebuilt"] == 1

    def test_delta_rows_are_identical_to_a_rebuild_including_node_identity(self):
        db = _db()
        view = db.create_view("site(//item[ID](/name[V]))", name="items")
        asia = db.document.nodes_on_path("/site/regions/asia")[0]
        node = db.insert_subtree(
            asia, XMLNode("item", None, [XMLNode("name", "widget")])
        )
        assert db.maintenance_stats["delta_applied"] == 1
        oracle = MaterializedView(view.pattern.copy(), db.document, name="oracle")
        assert view.relation.rows == oracle.relation.rows
        assert view.relation.sorted_by == oracle.relation.sorted_by
        db.delete_subtree(node)
        oracle = MaterializedView(view.pattern.copy(), db.document, name="oracle2")
        assert view.relation.rows == oracle.relation.rows

    def test_extent_version_moves_only_on_extent_change(self):
        db = _db()
        items = db.create_view("site(//item[ID](/name[V]))", name="items")
        people = db.create_view("site(/people(/person[ID,C]))", name="people")
        item_version, people_version = items.extent_version, people.extent_version
        asia = db.document.nodes_on_path("/site/regions/asia")[0]
        db.insert_subtree(asia, XMLNode("item", None, [XMLNode("name", "w")]))
        assert items.extent_version > item_version
        # the people view is also maintained (its splice is empty), so its
        # version moves too — what matters is that both stay rebuild-identical
        assert people.extent_version >= people_version

    def test_value_index_probes_match_after_delta_maintenance(self):
        db = _db()
        db.create_view("site(//item(/name[ID,V]))", name="names")
        query = 'site(//item(/name[ID,V]{v="widget"}))'
        assert len(db.query(query)) == 0
        asia = db.document.nodes_on_path("/site/regions/asia")[0]
        db.insert_subtree(asia, XMLNode("item", None, [XMLNode("name", "widget")]))
        # the delta produced a new Relation with no cached column batch, so
        # the probe below rebuilds its index lazily over the patched rows
        probed = db.query(query)
        rebuilt = Database(db.document, maintenance="rebuild")
        rebuilt.create_view("site(//item(/name[ID,V]))", name="names")
        assert probed.same_contents(rebuilt.query(query))
        assert len(probed) == 1


# --------------------------------------------------------------------------- #
# session-level ingestion
# --------------------------------------------------------------------------- #
class TestSessionIngestion:
    def test_ingest_stream_applies_each_completed_element(self):
        db = _db()
        db.create_view("site(//item[ID](/name[V]))", name="items")
        asia = db.document.nodes_on_path("/site/regions/asia")[0]
        before = len(db.query("site(//item[ID](/name[V]))"))
        nodes = db.ingest_stream(
            ["<item><name>str", "eamed</name></item><item><name>x</name></item>"],
            asia,
        )
        assert [n.parent for n in nodes] == [asia, asia]
        assert len(db.query("site(//item[ID](/name[V]))")) == before + 2

    def test_queries_see_mutations_immediately(self):
        db = _db()
        db.create_view("site(//item[ID](/name[V]))", name="items")
        query = "site(//item[ID](/name[V]))"
        baseline = len(db.query(query))
        asia = db.document.nodes_on_path("/site/regions/asia")[0]
        node = db.insert_subtree(asia, XMLNode("item", None, [XMLNode("name", "w")]))
        assert len(db.query(query)) == baseline + 1  # plan cache invalidated
        db.delete_subtree(node)
        assert len(db.query(query)) == baseline

    def test_attach_log_refuses_a_log_with_history(self, tmp_path):
        path = tmp_path / "doc.log"
        with ChangeLog(path) as log:
            log.append("load", {"name": "other", "root": ["site", None, []]})
        db = _db()
        with pytest.raises(SessionError, match="recover"):
            db.attach_log(path)
