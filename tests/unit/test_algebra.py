"""Unit tests for the nested-relation model, the operators and the executor."""

import pytest

from repro import MaterializedView, ValueFormula, parse_parenthesized, parse_pattern
from repro.algebra.execution import PlanExecutor
from repro.algebra.operators import (
    ContentNavigation,
    GroupBy,
    IdEqualityJoin,
    NestedProjection,
    NestedStructuralJoin,
    ParentIdDerivation,
    Projection,
    Selection,
    StructuralJoin,
    UnionPlan,
    Unnest,
    ViewScan,
)
from repro.algebra.tuples import Relation
from repro.errors import AlgebraError, PlanExecutionError
from repro.patterns.pattern import Axis
from repro.views.store import ViewSet


class TestRelation:
    def test_schema_validation(self):
        with pytest.raises(AlgebraError):
            Relation(["a", "a"])
        relation = Relation(["a", "b"])
        with pytest.raises(AlgebraError):
            relation.append((1,))

    def test_project_deduplicates(self):
        relation = Relation(["a", "b"], rows=[(1, 2), (1, 3), (1, 2)])
        projected = relation.project(["a"])
        assert len(projected) == 1

    def test_select_and_rename(self):
        relation = Relation(["a", "b"], rows=[(1, 2), (5, 6)])
        selected = relation.select(lambda row: row["a"] > 2)
        assert selected.rows == [(5, 6)]
        renamed = relation.rename({"a": "x"})
        assert renamed.column_names == ["x", "b"]

    def test_join_and_union(self):
        left = Relation(["a"], rows=[(1,), (2,)])
        right = Relation(["b"], rows=[(2,), (3,)])
        joined = left.join(right, lambda l, r: l["a"] == r["b"])
        assert joined.rows == [(2, 2)]
        union = left.union(Relation(["a"], rows=[(2,), (9,)]))
        assert len(union) == 3

    def test_union_arity_mismatch(self):
        with pytest.raises(AlgebraError):
            Relation(["a"]).union(Relation(["a", "b"]))

    def test_same_contents_ignores_order_and_names(self):
        left = Relation(["a", "b"], rows=[(1, 2), (3, 4)])
        right = Relation(["x", "y"], rows=[(3, 4), (1, 2)])
        assert left.same_contents(right)

    def test_nested_relations_compare_recursively(self):
        inner = Relation(["v"], rows=[(1,), (2,)])
        inner_same = Relation(["v"], rows=[(2,), (1,)])
        left = Relation(["k", "g"], rows=[(1, inner)])
        right = Relation(["k", "g"], rows=[(1, inner_same)])
        assert left.same_contents(right)

    def test_node_and_id_compare_equal(self):
        doc = parse_parenthesized("a(b)")
        node = doc.root.children[0]
        left = Relation(["x"], rows=[(node,)])
        right = Relation(["x"], rows=[(node.dewey,)])
        assert left.same_contents(right)

    def test_to_table_renders(self):
        relation = Relation(["a"], rows=[(None,), (Relation(["v"], rows=[(1,)]),)])
        text = relation.to_table()
        assert "⊥" in text and "{1}" in text


@pytest.fixture()
def executor_setup():
    doc = parse_parenthesized(
        'site(item(name="pen" listitem(keyword="gold") listitem(keyword="steel")) item(name="ink"))'
    )
    views = ViewSet(
        [
            MaterializedView(parse_pattern("site(//item[ID,V,C](/name[V]))", name="items"), doc, name="items"),
            MaterializedView(parse_pattern("site(//keyword[ID,V])", name="keywords"), doc, name="keywords"),
            MaterializedView(
                parse_pattern("site(//item[ID](//?~listitem(/keyword[ID,V])))", name="nested"),
                doc,
                name="nested",
            ),
        ]
    )
    return doc, views, PlanExecutor(views)


class TestOperators:
    def test_view_scan_qualifies_columns(self, executor_setup):
        _, _, executor = executor_setup
        result = executor.execute(ViewScan("items", alias="i"))
        assert result.column_names == ["i.ID1", "i.V1", "i.C1", "i.V2"]
        assert len(result) == 2

    def test_unknown_view_raises(self, executor_setup):
        _, _, executor = executor_setup
        with pytest.raises(PlanExecutionError):
            executor.execute(ViewScan("missing"))

    def test_structural_join(self, executor_setup):
        _, _, executor = executor_setup
        plan = StructuralJoin(
            left=ViewScan("items", alias="i"),
            right=ViewScan("keywords", alias="k"),
            left_column="i.ID1",
            right_column="k.ID1",
            axis=Axis.DESCENDANT,
        )
        result = executor.execute(plan)
        assert len(result) == 2  # only the pen item has keywords

    def test_parent_join_vs_ancestor_join(self, executor_setup):
        _, _, executor = executor_setup
        plan = StructuralJoin(
            left=ViewScan("items", alias="i"),
            right=ViewScan("keywords", alias="k"),
            left_column="i.ID1",
            right_column="k.ID1",
            axis=Axis.CHILD,
        )
        # keywords are grandchildren of items, so the parent join is empty
        assert len(executor.execute(plan)) == 0

    def test_id_equality_join(self, executor_setup):
        _, _, executor = executor_setup
        plan = IdEqualityJoin(
            left=ViewScan("items", alias="l"),
            right=ViewScan("items", alias="r"),
            left_column="l.ID1",
            right_column="r.ID1",
        )
        assert len(executor.execute(plan)) == 2

    def test_nested_structural_join_groups(self, executor_setup):
        _, _, executor = executor_setup
        plan = NestedStructuralJoin(
            left=ViewScan("items", alias="i"),
            right=ViewScan("keywords", alias="k"),
            left_column="i.ID1",
            right_column="k.ID1",
            group_column="G",
        )
        result = executor.execute(plan)
        assert len(result) == 2
        groups = {row[result.column_index("i.V2")]: row[-1] for row in result.rows}
        assert len(groups["pen"]) == 2
        assert len(groups["ink"]) == 0

    def test_projection_and_selection(self, executor_setup):
        _, _, executor = executor_setup
        plan = Projection(
            child=Selection(
                child=ViewScan("items", alias="i"),
                column="i.V2",
                formula=ValueFormula.eq("pen"),
            ),
            columns=["i.V2"],
            renames={"i.V2": "name"},
        )
        result = executor.execute(plan)
        assert result.column_names == ["name"]
        assert result.rows == [("pen",)]

    def test_unnest_and_group_by(self, executor_setup):
        _, _, executor = executor_setup
        unnested = executor.execute(
            Unnest(child=ViewScan("nested", alias="n"), nested_column="n.A2")
        )
        assert len(unnested) == 2  # two keywords, ink item dropped
        regrouped = executor.execute(
            GroupBy(
                child=Unnest(child=ViewScan("nested", alias="n"), nested_column="n.A2"),
                key_columns=["n.ID1"],
                nested_columns=["V2"],
                group_column="A",
            )
        )
        assert len(regrouped) == 1
        assert len(regrouped.rows[0][-1]) == 2

    def test_unnest_keep_empty(self, executor_setup):
        _, _, executor = executor_setup
        result = executor.execute(
            Unnest(child=ViewScan("nested", alias="n"), nested_column="n.A2", keep_empty=True)
        )
        assert len(result) == 3  # the ink item survives with nulls

    def test_content_navigation(self, executor_setup):
        _, _, executor = executor_setup
        plan = ContentNavigation(
            child=ViewScan("items", alias="i"),
            content_column="i.C1",
            steps=((Axis.CHILD, "listitem"), (Axis.CHILD, "keyword")),
            new_column="kw",
            attribute="V",
        )
        result = executor.execute(plan)
        keywords = {row[-1] for row in result.rows}
        assert keywords == {"gold", "steel", None}

    def test_parent_id_derivation(self, executor_setup):
        _, _, executor = executor_setup
        plan = ParentIdDerivation(
            child=ViewScan("keywords", alias="k"),
            id_column="k.ID1",
            levels_up=2,
            new_column="item_id",
        )
        result = executor.execute(plan)
        derived = {str(row[-1]) for row in result.rows}
        assert derived == {"1.1"}  # both keywords live under the first item

    def test_nested_projection(self, executor_setup):
        _, _, executor = executor_setup
        plan = NestedProjection(
            child=ViewScan("nested", alias="n"),
            nested_column="n.A2",
            columns=["V2"],
            renames={"V2": "kw"},
        )
        result = executor.execute(plan)
        nested = result.rows[0][-1]
        assert nested.column_names == ["kw"]

    def test_union_plan(self, executor_setup):
        _, _, executor = executor_setup
        plan = UnionPlan(
            plans=(
                Projection(child=ViewScan("items", alias="a"), columns=["a.V2"]),
                Projection(child=ViewScan("items", alias="b"), columns=["b.V2"]),
            )
        )
        assert len(executor.execute(plan)) == 2

    def test_empty_union_rejected(self, executor_setup):
        _, _, executor = executor_setup
        with pytest.raises(PlanExecutionError):
            executor.execute(UnionPlan(plans=()))

    def test_plan_description_and_size(self):
        plan = Projection(
            child=StructuralJoin(
                left=ViewScan("a"), right=ViewScan("b"), left_column="x", right_column="y"
            ),
            columns=["x"],
        )
        assert plan.view_scan_count() == 2
        text = plan.describe()
        assert "StructuralJoin" in text and "ViewScan(a)" in text


class TestViews:
    def test_materialized_view_schema_and_relation(self, executor_setup):
        _, views, _ = executor_setup
        view = views["items"]
        assert view.column_names() == ["ID1", "V1", "C1", "V2"]
        assert view.is_materialized
        assert len(view.relation) == 2

    def test_unmaterialised_view_raises(self):
        from repro.errors import ReproError

        view = MaterializedView(parse_pattern("a(/b[V])", name="v"))
        with pytest.raises(ReproError):
            _ = view.relation

    def test_view_set_rejects_duplicates(self, executor_setup):
        _, views, _ = executor_setup
        with pytest.raises(Exception):
            views.add(MaterializedView(parse_pattern("a(/b[V])", name="x"), name="items"))

    def test_view_set_lookup(self, executor_setup):
        _, views, _ = executor_setup
        assert "items" in views
        assert views.get("nope") is None
        assert len(views) == 3
        with pytest.raises(KeyError):
            views["nope"]

    def test_id_scheme_flags(self):
        from repro.views.view import IdScheme

        assert IdScheme.dewey().structural and IdScheme.dewey().derives_parent
        assert not IdScheme.opaque().structural
