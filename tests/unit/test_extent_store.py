"""The shared extent store: codec fidelity, publish-once, staleness, refcounts.

The parallel-execution A/B harness
(``tests/integration/test_parallel_execution_ab.py``) covers the store as
used by worker processes; these tests pin the store's *contracts* in one
process, where every failure mode is observable directly.
"""

from __future__ import annotations

import pytest

from repro import Database, MaterializedView, parse_parenthesized, parse_pattern
from repro.algebra.tuples import Column, Relation
from repro.views.extent_store import (
    AttachedExtents,
    ExtentStore,
    ExtentStoreError,
    StaleExtentError,
    decode_relation,
    encode_relation,
)
from repro.views.store import ViewSet
from repro.xmltree.ids import DeweyID


@pytest.fixture()
def document():
    return parse_parenthesized(
        'site(item(name="pen" price=3) item(name="ink" price=5))'
    )


@pytest.fixture()
def views(document):
    return ViewSet(
        [
            MaterializedView(
                parse_pattern("site(//item[ID](/name[V]))", name="names"), document
            ),
            MaterializedView(
                parse_pattern("site(//item[ID,C])", name="contents"), document
            ),
        ]
    )


# --------------------------------------------------------------------------- #
# codec
# --------------------------------------------------------------------------- #
def test_codec_round_trips_every_cell_type():
    nested = Relation([Column("n", kind="V")], rows=[(1,), ("x",)])
    document = parse_parenthesized('site(item(name="pen"))')
    node = document.root.children[0]  # <item>, with dewey + path assigned
    relation = Relation(
        [
            Column("ID1", kind="ID", paths=("/site/item",)),
            Column("V1", kind="V"),
            Column("C1", kind="C"),
            Column("A1", kind="NESTED"),
        ]
    )
    relation.append((DeweyID((1, 1)), "text", node, nested))
    relation.append((None, 2**80, None, None))  # ⊥, beyond-i64 int, nulls
    relation.append((DeweyID((1, 2)), -3.5, None, nested))
    relation.mark_sorted_by("ID1")

    decoded = decode_relation(encode_relation(relation))
    assert decoded.column_names == relation.column_names
    assert [c.kind for c in decoded.columns] == [c.kind for c in relation.columns]
    assert decoded.columns[0].paths == ("/site/item",)
    assert decoded.sorted_by == "ID1"
    assert decoded.same_contents(relation)
    assert decoded.rows[1][1] == 2**80

    # the content reference is a rebuilt copy: ID-equal, structurally equal,
    # but not the parent process's live node object
    rebuilt = decoded.rows[0][2]
    assert rebuilt is not node
    assert rebuilt.dewey == node.dewey
    assert rebuilt.path == node.path
    assert rebuilt.children[0].label == "name"
    assert rebuilt.children[0].dewey == node.children[0].dewey


def test_codec_rejects_foreign_cell_types():
    relation = Relation([Column("x")])
    relation.append((object(),))
    with pytest.raises(ExtentStoreError, match="cannot be encoded"):
        encode_relation(relation)


def test_decode_rejects_non_extent_payloads():
    with pytest.raises(ExtentStoreError, match="bad magic"):
        decode_relation(b"not an extent")


# --------------------------------------------------------------------------- #
# publish / attach lifecycle
# --------------------------------------------------------------------------- #
def test_publish_is_keyed_on_view_set_version(views):
    store = ExtentStore()
    try:
        manifest = store.publish(views)
        assert sorted(manifest.view_names) == ["contents", "names"]
        assert store.publish_count == 2
        assert store.publish(views) is manifest, "unchanged version republished"
        assert store.publish_count == 2
    finally:
        store.release()


def test_attach_reads_the_published_extents(views):
    store = ExtentStore()
    attached = None
    try:
        attached = AttachedExtents.attach(store.publish(views))
        for view in views:
            relation = attached[view.name].relation
            assert relation.same_contents(view.relation)
            assert relation.sorted_by == view.relation.sorted_by
        assert set(attached) == {"names", "contents"}
        with pytest.raises(KeyError, match="no published extent"):
            attached["missing"]
    finally:
        if attached is not None:
            attached.close()
        store.release()


def test_unmaterialised_views_are_skipped(views):
    views.add(
        MaterializedView(parse_pattern("site(//name[V])", name="lazy"))
    )
    store = ExtentStore()
    try:
        manifest = store.publish(views)
        assert "lazy" not in manifest.view_names
    finally:
        store.release()


def test_stale_manifest_is_rejected_after_ddl(views, document):
    store = ExtentStore()
    try:
        old_manifest = store.publish(views)
        views.add(
            MaterializedView(parse_pattern("site(//name[V])", name="extra"), document)
        )
        new_manifest = store.publish(views)  # supersedes the old segments
        assert new_manifest.version != old_manifest.version
        with pytest.raises(StaleExtentError, match="stale"):
            AttachedExtents.attach(old_manifest)
        fresh = AttachedExtents.attach(new_manifest)
        assert len(fresh["extra"].relation) > 0
        fresh.close()
    finally:
        store.release()


def test_diff_publish_reencodes_only_changed_views(views, document):
    store = ExtentStore()
    try:
        store.publish(views)
        assert store.publish_count == 2
        # DDL adds a third view: only the new extent is encoded
        views.add(
            MaterializedView(parse_pattern("site(//name[V])", name="extra"), document)
        )
        store.publish(views)
        assert store.publish_count == 3
        # a document mutation bumps one view's extent_version: one re-encode
        names = views["names"]
        names._relation = names.relation.project(names.relation.column_names)
        names._extent_version = names.extent_version + 1
        views.touch()
        store.publish(views)
        assert store.publish_count == 4
    finally:
        store.release()


def test_old_manifests_go_stale_even_when_all_segments_survive(views):
    # Diff publishing reuses every view segment when nothing changed except
    # the version — the per-publish guard segment alone must reject readers
    # holding the superseded manifest.
    store = ExtentStore()
    try:
        old_manifest = store.publish(views)
        views.touch()  # e.g. a document mutation that left every extent intact
        new_manifest = store.publish(views)
        assert new_manifest.version != old_manifest.version
        assert store.publish_count == 2, "no view segment was re-encoded"
        with pytest.raises(StaleExtentError, match="stale"):
            AttachedExtents.attach(old_manifest)
        fresh = AttachedExtents.attach(new_manifest)
        fresh.close()
    finally:
        store.release()


def test_refcounted_release_unlinks_on_last_owner(views):
    store = ExtentStore()
    manifest = store.publish(views)
    store.retain()  # two owners now
    store.release()
    # one owner left: segments must still be attachable
    attached = AttachedExtents.attach(manifest)
    attached.close()
    store.release()  # last owner: segments unlinked
    assert store.references == 0
    with pytest.raises(StaleExtentError):
        AttachedExtents.attach(manifest)
    with pytest.raises(ExtentStoreError, match="released"):
        store.publish(views)
    with pytest.raises(ExtentStoreError, match="released"):
        store.retain()
    store.release()  # over-release is a quiet no-op


def test_database_close_releases_the_store(document):
    db = Database(document)
    db.create_view("site(//item[ID](/name[V]))", name="v")
    db.query_many(["site(//item[ID](/name[V]))"] * 2, workers=2, execute=True)
    store = db.extent_store
    assert store is not None and store.references == 1
    manifest = store.manifest
    db.close()
    assert store.references == 0
    with pytest.raises(StaleExtentError):
        AttachedExtents.attach(manifest)
    assert db.extent_store is None
