"""The canonical-model memo: hits, and the abort/cap non-caching rules."""

from __future__ import annotations

import time

import pytest

from repro import build_summary, parse_parenthesized, parse_pattern
from repro.canonical.model import (
    canonical_model,
    canonical_model_cache,
    clear_canonical_model_cache,
    iter_canonical_model,
)
from repro.containment.core import (
    clear_containment_cache,
    containment_cache_disabled,
    is_contained,
)
from repro.errors import ContainmentBudgetExceeded


@pytest.fixture()
def summary():
    return build_summary(
        parse_parenthesized(
            'site(regions(asia(item(name="pen") item(name="ink"))'
            ' europe(item(name="nib"))))',
            name="memo-doc",
        )
    )


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_containment_cache()  # clears the canonical memo as well
    yield
    clear_containment_cache()


def _model_keys(trees):
    return sorted(tree.key() for tree in trees)


class TestMemoHits:
    def test_second_enumeration_replays_the_cached_model(self, summary):
        cache = canonical_model_cache()
        pattern = parse_pattern("site(//item[ID,V](/name[ID,V]))")
        first = canonical_model(pattern, summary)
        misses = cache.misses
        second = canonical_model(pattern, summary)
        assert cache.hits >= 1 and cache.misses == misses
        assert _model_keys(first) == _model_keys(second)

    def test_key_is_the_canonical_pattern_hash_not_identity(self, summary):
        cache = canonical_model_cache()
        canonical_model(parse_pattern("site(//item[ID,V])"), summary)
        # a structurally identical but distinct pattern object hits
        canonical_model(parse_pattern("site(//item[ID,V])"), summary)
        assert cache.hits >= 1

    def test_containment_benefits_from_the_model_memo(self, summary):
        cache = canonical_model_cache()
        left = parse_pattern("site(//item[ID,V])")
        right = parse_pattern("site(//item[ID,V])")
        assert is_contained(left, right, summary)
        clear_containment_cache()  # forget decisions but also models...
        canonical_model(left, summary)  # ...then rebuild the model once
        hits_before = cache.hits
        assert is_contained(left, right, summary)
        assert cache.hits > hits_before


class TestNonCachingRules:
    def test_abandoned_enumerations_are_not_stored(self, summary):
        cache = canonical_model_cache()
        pattern = parse_pattern("site(//item[ID,V])")
        iterator = iter_canonical_model(pattern, summary)
        next(iterator)
        iterator.close()  # consumer walked away mid-enumeration
        assert len(cache) == 0

    def test_deadline_aborts_are_not_stored(self, summary):
        cache = canonical_model_cache()
        pattern = parse_pattern("site(//item[ID,V](/?name[ID,V]))")
        with pytest.raises(ContainmentBudgetExceeded):
            list(
                iter_canonical_model(
                    pattern, summary, deadline=time.perf_counter() - 1.0
                )
            )
        assert len(cache) == 0

    def test_oversized_models_are_not_stored(self, summary):
        cache = canonical_model_cache()
        cache.max_trees_cached = 0  # force every model to overflow the cap
        try:
            trees = canonical_model(parse_pattern("site(//item[ID,V])"), summary)
            assert trees  # the enumeration itself still works
            assert len(cache) == 0
        finally:
            cache.max_trees_cached = 256

    def test_disabled_context_bypasses_reads_and_writes(self, summary):
        cache = canonical_model_cache()
        pattern = parse_pattern("site(//item[ID,V])")
        canonical_model(pattern, summary)
        assert len(cache) == 1
        with containment_cache_disabled():
            hits = cache.hits
            canonical_model(pattern, summary)
            assert cache.hits == hits

    def test_lru_eviction_respects_maxsize(self, summary):
        cache = canonical_model_cache()
        cache.maxsize = 2
        try:
            for label in ("item", "name", "regions", "asia"):
                canonical_model(parse_pattern(f"site(//{label}[ID])"), summary)
            assert len(cache) <= 2
        finally:
            cache.maxsize = 512
