"""Unit tests for the planning layer: statistics, cost model, lowering.

The load-bearing guarantees:

* cost monotonicity — a bigger view relation makes a scan costlier, and
  wrapping any plan in an extra structural join makes it costlier,
* DAG semantics — shared sub-plans are represented (and charged) once,
  matching the executor's per-object result memo,
* the planner ranks by cost and its choice is deterministic under ties.
"""

from __future__ import annotations

import pytest

from repro import build_summary, parse_parenthesized, parse_pattern
from repro.algebra.operators import (
    IdEqualityJoin,
    Projection,
    Selection,
    StructuralJoin,
    UnionPlan,
    ViewScan,
)
from repro.patterns.pattern import Axis
from repro.patterns.predicates import ValueFormula
from repro.planning.cost import CostModel
from repro.planning.logical import lower_plan
from repro.planning.planner import Planner
from repro.rewriting.rewriter import Rewriter
from repro.summary.statistics import Statistics
from repro.views.view import MaterializedView


@pytest.fixture()
def doc():
    return parse_parenthesized(
        'site(regions(asia(item(name="pen") item(name="ink") item(name="pad"))'
        ' europe(item(name="nib"))))',
        name="planning-doc",
    )


@pytest.fixture()
def summary(doc):
    return build_summary(doc)


def _stats_with(rows_by_view: dict[str, float], summary) -> Statistics:
    statistics = Statistics(summary)
    for name, rows in rows_by_view.items():
        statistics.set_view_rows(name, rows)
    return statistics


class TestStatistics:
    def test_instance_counts_come_from_the_summary(self, summary):
        statistics = Statistics(summary)
        item = summary.node_by_path("/site/regions/asia/item")
        assert statistics.instance_count(item.number) == item.instance_count == 3

    def test_materialized_views_report_exact_rows(self, doc, summary):
        view = MaterializedView(parse_pattern("site(//item[ID,V])"), doc, name="vi")
        statistics = Statistics(summary, [view])
        assert statistics.view_rows("vi") == len(view.relation)
        assert statistics.view_rows_exact("vi")

    def test_unmaterialized_views_are_estimated_not_one(self, summary):
        view = MaterializedView(parse_pattern("site(//item[ID,V])"), name="vi")
        from repro.canonical.model import annotate_paths

        annotate_paths(view.pattern, summary)
        statistics = Statistics(summary, [view])
        assert not statistics.view_rows_exact("vi")
        assert statistics.view_rows("vi") == 4  # 3 asia items + 1 europe item

    def test_every_estimator_is_floored_at_positive(self, summary):
        statistics = Statistics(summary)
        assert statistics.instance_count(999999) >= 1
        assert statistics.view_rows("unknown") >= 1
        assert statistics.navigation_fanout(["nosuchlabel"]) > 0


class TestCostMonotonicity:
    def test_bigger_view_relation_means_costlier_scan(self, summary):
        small = CostModel(_stats_with({"v": 10}, summary))
        large = CostModel(_stats_with({"v": 10_000}, summary))
        scan = ViewScan("v")
        assert lower_plan(scan, large).total_cost > lower_plan(scan, small).total_cost

    def test_extra_structural_join_makes_any_plan_costlier(self, summary):
        model = CostModel(_stats_with({"a": 50, "b": 40}, summary))
        base = ViewScan("a")
        for axis in (Axis.CHILD, Axis.DESCENDANT):
            joined = StructuralJoin(
                left=base, right=ViewScan("b"),
                left_column="a.ID", right_column="b.ID", axis=axis,
            )
            assert (
                lower_plan(joined, model).total_cost
                > lower_plan(base, model).total_cost
            )

    def test_extra_operator_is_never_free(self, summary):
        # even a selection over an empty-ish input must add cost: the
        # planner's ranking relies on strictly positive operator work
        model = CostModel(_stats_with({"v": 1}, summary))
        scan = ViewScan("v")
        selected = Selection(
            child=scan, column="v.V1", formula=ValueFormula.eq("pen")
        )
        assert (
            lower_plan(selected, model).total_cost
            > lower_plan(scan, model).total_cost
        )

    def test_joining_bigger_inputs_costs_more(self, summary):
        model = CostModel(_stats_with({"a": 100, "b": 100, "c": 5}, summary))
        big = IdEqualityJoin(
            left=ViewScan("a"), right=ViewScan("b"),
            left_column="a.ID", right_column="b.ID",
        )
        small = IdEqualityJoin(
            left=ViewScan("c"), right=ViewScan("c", alias="c2"),
            left_column="c.ID", right_column="c2.ID",
        )
        assert lower_plan(big, model).total_cost > lower_plan(small, model).total_cost


class TestLogicalPlanDag:
    def test_shared_subplan_is_one_node_charged_once(self, summary):
        model = CostModel(_stats_with({"v": 100}, summary))
        shared = ViewScan("v")
        self_join = IdEqualityJoin(
            left=shared, right=shared, left_column="v.ID", right_column="v.ID"
        )
        plan = lower_plan(self_join, model)
        assert plan.operator_count == 2  # the join + ONE scan node
        assert plan.shared_operator_count == 1
        # total = scan charged once + join work, not scan twice
        scan_cost = lower_plan(shared, model).total_cost
        join_only = plan.root.estimate.operator_cost
        assert plan.total_cost == pytest.approx(scan_cost + join_only)

    def test_diamond_sharing_is_not_double_charged(self, summary):
        model = CostModel(_stats_with({"v": 100}, summary))
        shared = ViewScan("v")
        left = Selection(child=shared, column="v.V1", formula=ValueFormula.eq(1))
        right = Selection(child=shared, column="v.V1", formula=ValueFormula.eq(2))
        diamond = UnionPlan(plans=(left, right))
        plan = lower_plan(diamond, model)
        operator_sum = sum(node.estimate.operator_cost for node in plan.nodes)
        # the scan reaches the union through both selections but is charged
        # exactly once: total equals the sum over DISTINCT operators
        assert plan.operator_count == 4
        assert plan.total_cost == pytest.approx(operator_sum)

    def test_lowering_is_lossless(self, summary):
        model = CostModel()
        root = Projection(child=ViewScan("v"), columns=("v.ID1",))
        assert lower_plan(root, model).to_algebra() is root

    def test_describe_marks_shared_nodes(self, summary):
        shared = ViewScan("v")
        join = IdEqualityJoin(
            left=shared, right=shared, left_column="v.ID", right_column="v.ID"
        )
        text = lower_plan(join, CostModel()).describe()
        assert "[shared]" in text
        assert "cost≈" in text


class TestPlannerChoice:
    def test_best_plan_is_the_minimum_cost_alternative(self, doc, summary):
        views = [
            MaterializedView(parse_pattern("site(//item[ID,V])", name="v_item"), doc),
            MaterializedView(parse_pattern("site(//name[ID,V])", name="v_name"), doc),
        ]
        rewriter = Rewriter(summary, views)
        planner = Planner(rewriter)
        choice = planner.plan(parse_pattern("site(//item[ID,V])"))
        assert choice.found and len(choice.alternatives) > 1
        costs = [planned.cost for planned in choice.alternatives]
        assert costs == sorted(costs)
        assert choice.best.cost == min(costs)
        assert choice.best.rank == 0

    def test_single_view_scan_beats_join_plans(self, doc, summary):
        views = [
            MaterializedView(parse_pattern("site(//item[ID,V])", name="v_item"), doc),
            MaterializedView(parse_pattern("site(//name[ID,V])", name="v_name"), doc),
        ]
        planner = Planner(Rewriter(summary, views))
        best = planner.best_plan(parse_pattern("site(//item[ID,V])"))
        assert best.rewriting.views_used == ("v_item",)
        assert best.logical_plan.to_algebra().view_scan_count() == 1

    def test_ranking_is_deterministic(self, doc, summary):
        views = [
            MaterializedView(parse_pattern("site(//item[ID,V])", name="v_item"), doc),
            MaterializedView(parse_pattern("site(//name[ID,V])", name="v_name"), doc),
        ]
        planner = Planner(Rewriter(summary, views))
        query = parse_pattern("site(//item[ID,V])")
        order_a = [p.rewriting.views_used for p in planner.plan(query)]
        order_b = [p.rewriting.views_used for p in planner.plan(query)]
        assert order_a == order_b

    def test_planner_raises_when_no_rewriting_exists(self, doc, summary):
        views = [
            MaterializedView(parse_pattern("site(//name[ID,V])", name="v_name"), doc)
        ]
        planner = Planner(Rewriter(summary, views))
        from repro.errors import RewritingError

        with pytest.raises(RewritingError):
            planner.best_plan(parse_pattern("site(//item[ID,V])"))
