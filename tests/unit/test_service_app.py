"""The service application, driven directly — no socket, no transport.

``ServiceApp.handle`` maps ``(method, path, payload)`` to a typed
response; these tests pin the endpoint contracts (bodies, envelopes,
error codes), the tracing and metrics side effects, and the ASGI adapter
(awaited with stub callables — no ASGI server involved).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import Database, parse_parenthesized
from repro.service.app import ServiceApp
from repro.service.models import SCHEMA_VERSION, relation_from_payload
from repro.service.server import make_asgi_app
from repro.errors import ServiceError

ITEM_NAMES = "site(//item[ID](/name[V]))"


def make_database() -> Database:
    document = parse_parenthesized(
        'site(item(name="pen") item(name="ink") item(name="vase"))'
    )
    database = Database(document)
    database.create_view(ITEM_NAMES, name="item_names")
    return database


@pytest.fixture()
def db():
    database = make_database()
    yield database
    database.close()


@pytest.fixture()
def app(db):
    return ServiceApp(db)


# --------------------------------------------------------------------------- #
# /query and the response envelope
# --------------------------------------------------------------------------- #
def test_query_returns_the_enveloped_result(app, db):
    response = app.handle("POST", "/query", {"query": ITEM_NAMES})
    assert response.ok and response.status == 200
    body = response.body
    assert body["schema_version"] == SCHEMA_VERSION
    assert body["request_id"] == response.request_id
    assert body["trace_id"] == response.trace_id
    assert len(response.trace_id) == 32
    assert body["views_used"] == ["item_names"]
    rebuilt = relation_from_payload(body["result"])
    assert rebuilt.same_contents(db.query(ITEM_NAMES))


def test_each_request_gets_a_distinct_id_and_trace(app):
    first = app.handle("POST", "/query", {"query": ITEM_NAMES})
    second = app.handle("POST", "/query", {"query": ITEM_NAMES})
    assert first.request_id != second.request_id
    assert first.trace_id != second.trace_id


def test_query_body_must_be_json_object(app):
    response = app.handle("POST", "/query", None)
    assert response.status == 400
    assert response.body["error"]["code"] == "bad-request"


def test_unparsable_pattern_maps_to_bad_pattern(app):
    response = app.handle("POST", "/query", {"query": "site(((("})
    assert response.status == 400
    assert response.body["error"]["code"] == "bad-pattern"


def test_unanswerable_query_maps_to_422(app):
    response = app.handle("POST", "/query", {"query": "site(//mailbox[ID])"})
    assert response.status == 422
    assert response.body["error"]["code"] == "unanswerable"


def test_unknown_endpoint_and_wrong_method(app):
    assert app.handle("POST", "/nope", {}).status == 404
    assert app.handle("GET", "/query", None).status == 405
    assert app.handle("POST", "/healthz", {}).status == 405
    assert app.handle("GET", "/execute/stmt-1", None).status == 405


def test_trailing_slashes_are_tolerated(app):
    assert app.handle("GET", "/healthz/", None).status == 200


def test_query_many_preserves_input_order(app, db):
    queries = [ITEM_NAMES, "site(//item[ID])", ITEM_NAMES]
    response = app.handle("POST", "/query_many", {"queries": queries})
    assert response.ok
    results = response.body["results"]
    assert len(results) == 3
    for query, result in zip(queries, results):
        rebuilt = relation_from_payload(result["result"])
        assert rebuilt.same_contents(db.query(query))


# --------------------------------------------------------------------------- #
# prepare / execute
# --------------------------------------------------------------------------- #
def test_prepare_then_execute_roundtrip(app, db):
    prepared = app.handle("POST", "/prepare", {"query": ITEM_NAMES})
    assert prepared.ok
    stmt_id = prepared.body["stmt_id"]
    assert prepared.body["times_planned"] == 1
    executed = app.handle("POST", f"/execute/{stmt_id}", None)
    assert executed.ok
    assert executed.body["times_planned"] == 1
    rebuilt = relation_from_payload(executed.body["result"])
    assert rebuilt.same_contents(db.query(ITEM_NAMES))


def test_execute_replans_after_ddl(app):
    stmt_id = app.handle("POST", "/prepare", {"query": ITEM_NAMES}).body["stmt_id"]
    app.handle("POST", f"/execute/{stmt_id}", None)
    ddl = app.handle(
        "POST", "/ddl",
        {"op": "create_view", "name": "ids", "pattern": "site(//item[ID])"},
    )
    assert ddl.ok
    executed = app.handle("POST", f"/execute/{stmt_id}", None)
    assert executed.body["times_planned"] == 2, "DDL must force a re-plan"


def test_execute_unknown_statement_is_404(app):
    response = app.handle("POST", "/execute/stmt-99", None)
    assert response.status == 404
    assert response.body["error"]["code"] == "unknown-statement"


def test_execute_rejects_a_request_body(app):
    stmt_id = app.handle("POST", "/prepare", {"query": ITEM_NAMES}).body["stmt_id"]
    response = app.handle("POST", f"/execute/{stmt_id}", {"surprise": 1})
    assert response.status == 400


# --------------------------------------------------------------------------- #
# explain
# --------------------------------------------------------------------------- #
def test_explain_returns_the_structured_report(app, db):
    response = app.handle("POST", "/explain", {"query": ITEM_NAMES})
    assert response.ok
    report = response.body["explain"]
    assert report["views_used"] == ["item_names"]
    assert report["analyzed"] is False
    assert report["operators"][0]["depth"] == 0
    from repro.session.explain import ExplainReport

    assert ExplainReport.from_dict(report).views_used == ("item_names",)


def test_explain_analyze_carries_actual_rows(app):
    response = app.handle(
        "POST", "/explain", {"query": ITEM_NAMES, "analyze": True}
    )
    report = response.body["explain"]
    assert report["analyzed"] is True
    assert report["actual_rows"] == 3
    for entry in report["operators"]:
        assert entry["actual_rows"] is not None


# --------------------------------------------------------------------------- #
# ddl / ingest
# --------------------------------------------------------------------------- #
def test_ddl_create_and_drop(app, db):
    created = app.handle(
        "POST", "/ddl",
        {"op": "create_view", "name": "ids", "pattern": "site(//item[ID])"},
    )
    assert created.ok and created.body["rows"] == 3
    assert "ids" in db.views
    dropped = app.handle("POST", "/ddl", {"op": "drop_view", "name": "ids"})
    assert dropped.ok
    assert dropped.body["views_version"] > created.body["views_version"]
    assert "ids" not in db.views


def test_ddl_drop_unknown_view_is_404(app):
    response = app.handle("POST", "/ddl", {"op": "drop_view", "name": "ghost"})
    assert response.status == 404
    assert response.body["error"]["code"] == "unknown-view"


def test_ddl_duplicate_view_name_is_400_not_500(app):
    response = app.handle(
        "POST", "/ddl",
        {"op": "create_view", "name": "item_names", "pattern": "site(//item[ID])"},
    )
    assert response.status in (400, 500)
    assert "error" in response.body


def test_ingest_insert_and_delete_maintain_results(app, db):
    inserted = app.handle(
        "POST", "/ingest",
        {"op": "insert", "parent": "1",
         "subtree": ["item", None, [["name", "jar", []]]]},
    )
    assert inserted.ok
    dewey = inserted.body["dewey"]
    assert inserted.body["maintenance"]["summary_rebuilt"] == 0
    after = app.handle("POST", "/query", {"query": ITEM_NAMES})
    assert after.body["result"]["row_count"] == 4
    deleted = app.handle("POST", "/ingest", {"op": "delete", "dewey": dewey})
    assert deleted.ok and deleted.body["dewey"] == dewey
    final = app.handle("POST", "/query", {"query": ITEM_NAMES})
    assert final.body["result"]["row_count"] == 3


def test_ingest_bad_dewey_is_a_client_error(app):
    response = app.handle("POST", "/ingest", {"op": "delete", "dewey": "9.9.9"})
    assert 400 <= response.status < 500


# --------------------------------------------------------------------------- #
# observability endpoints
# --------------------------------------------------------------------------- #
def test_healthz_reports_the_session(app):
    response = app.handle("GET", "/healthz", None)
    assert response.ok
    assert response.body["status"] == "ok"
    assert response.body["views"] == 1


def test_metrics_render_requests_and_database_gauges(app):
    app.handle("POST", "/query", {"query": ITEM_NAMES})
    app.handle("POST", "/query", {"query": ITEM_NAMES})
    response = app.handle("GET", "/metrics", None)
    assert response.ok
    assert response.content_type.startswith("text/plain")
    text = response.body
    assert 'service_requests_total{endpoint="/query",status="200"} 2' in text
    assert 'service_request_seconds_count{endpoint="/query"} 2' in text
    # phase histograms observed once per query
    assert 'service_query_phase_seconds_count{phase="plan"} 2' in text
    # database gauges from Database.stats(): second query hit the plan cache
    assert "service_plan_cache_hits 1" in text
    assert "service_plan_cache_misses 1" in text
    assert "service_plan_cache_hit_rate 0.5" in text
    assert "service_views 1" in text
    assert "service_extent_publishes 0" in text
    assert 'service_maintenance_operations{path="delta_applied"} 0' in text


def test_metrics_error_statuses_are_counted(app):
    app.handle("POST", "/query", {"query": "site(//mailbox[ID])"})
    text = app.handle("GET", "/metrics", None).body
    assert 'service_requests_total{endpoint="/query",status="422"} 1' in text


def test_debug_traces_exposes_span_trees_with_operator_children(app):
    app.handle("POST", "/query", {"query": ITEM_NAMES})
    response = app.handle("GET", "/debug/traces", None)
    traces = response.body["traces"]
    assert traces, "the query trace must be retained"
    trace = traces[-1]
    assert trace["name"] == "POST /query"
    phases = [child["name"] for child in trace["children"]]
    assert phases == ["parse", "plan", "execute"]
    execute = trace["children"][2]
    operators = [
        grandchild
        for grandchild in execute["children"]
        if grandchild["name"].startswith("operator:")
    ]
    assert operators, "execute must carry per-operator spans"
    for span in operators:
        assert "estimated_rows" in span["attributes"]
        assert "actual_rows" in span["attributes"]


def test_profile_queries_false_skips_operator_spans(db):
    app = ServiceApp(db, profile_queries=False)
    app.handle("POST", "/query", {"query": ITEM_NAMES})
    trace = app.handle("GET", "/debug/traces", None).body["traces"][-1]
    execute = trace["children"][2]
    assert execute["children"] == []


def test_slow_query_log_fed_by_the_pipeline(db):
    app = ServiceApp(db, slow_query_seconds=0.0)  # everything is "slow"
    app.handle("POST", "/query", {"query": ITEM_NAMES})
    response = app.handle("GET", "/debug/slow_queries", None)
    assert response.body["threshold_seconds"] == 0.0
    entries = response.body["slow_queries"]
    assert len(entries) == 1
    entry = entries[0]
    assert len(entry["fingerprint"]) == 16
    assert "Projection" in entry["plan"] or "Scan" in entry["plan"]
    assert len(entry["trace_id"]) == 32


def test_trace_log_path_writes_jsonl(db, tmp_path):
    path = tmp_path / "traces.jsonl"
    app = ServiceApp(db, trace_log_path=path)
    app.handle("POST", "/query", {"query": ITEM_NAMES})
    app.handle("GET", "/healthz", None)
    app.close()
    app.close()  # idempotent
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [line["name"] for line in lines] == ["POST /query", "GET /healthz"]


def test_error_requests_still_trace(app):
    response = app.handle("POST", "/query", {"query": "site(//mailbox[ID])"})
    assert response.trace_id is not None
    traces = app.handle("GET", "/debug/traces", None).body["traces"]
    failed = [t for t in traces if t["trace_id"] == response.trace_id]
    assert failed and failed[0]["status"] == "error"


# --------------------------------------------------------------------------- #
# the ASGI adapter
# --------------------------------------------------------------------------- #
def _asgi_call(application, method, path, payload):
    messages = []
    body = b"" if payload is None else json.dumps(payload).encode()
    received = {"done": False}

    async def receive():
        if received["done"]:
            raise AssertionError("receive called twice")
        received["done"] = True
        return {"type": "http.request", "body": body, "more_body": False}

    async def send(message):
        messages.append(message)

    scope = {"type": "http", "method": method, "path": path}
    asyncio.run(application(scope, receive, send))
    start = messages[0]
    payload = b"".join(m.get("body", b"") for m in messages[1:])
    headers = {name.decode(): value.decode() for name, value in start["headers"]}
    return start["status"], headers, payload


def test_asgi_adapter_serves_the_same_app(app, db):
    application = make_asgi_app(app)
    status, headers, raw = _asgi_call(
        application, "POST", "/query", {"query": ITEM_NAMES}
    )
    assert status == 200
    assert headers["content-type"] == "application/json"
    assert "x-request-id" in headers and "x-trace-id" in headers
    body = json.loads(raw)
    rebuilt = relation_from_payload(body["result"])
    assert rebuilt.same_contents(db.query(ITEM_NAMES))


def test_asgi_adapter_rejects_bad_json(app):
    application = make_asgi_app(app)
    messages = []

    async def receive():
        return {"type": "http.request", "body": b"{nope", "more_body": False}

    async def send(message):
        messages.append(message)

    asyncio.run(
        application({"type": "http", "method": "POST", "path": "/query"},
                    receive, send)
    )
    assert messages[0]["status"] == 400
    body = json.loads(messages[1]["body"])
    assert body["error"]["code"] == "bad-json"


def test_asgi_adapter_declines_non_http_scopes(app):
    application = make_asgi_app(app)

    async def receive():  # pragma: no cover - never called
        return {}

    async def send(message):  # pragma: no cover - never called
        pass

    with pytest.raises(ServiceError, match="unsupported ASGI scope"):
        asyncio.run(application({"type": "lifespan"}, receive, send))
