"""Dewey-order edge cases of the staircase merge join.

Every test runs the same plan through both executor strategies — the merge
join and the nested-loop oracle — and asserts identical contents, then pins
down the specific edge the fixture exercises: duplicate identifiers,
self-ancestor chains, empty extents, mixed string/DeweyID columns (the
``_as_dewey`` coercion) and the ``sorted_by`` annotation lifecycle through
``Select`` / ``Project``.
"""

from __future__ import annotations

import pytest

from repro.algebra.execution import PlanExecutor
from repro.algebra.operators import (
    NestedStructuralJoin,
    Projection,
    Selection,
    StructuralJoin,
    ViewScan,
)
from repro.algebra.tuples import Column, Relation, as_dewey
from repro.errors import AlgebraError, PlanExecutionError
from repro.patterns.pattern import Axis
from repro.patterns.predicates import ValueFormula
from repro.xmltree.ids import DeweyID


class _Extent:
    """Minimal view-store entry: anything exposing ``relation`` works."""

    def __init__(self, relation: Relation):
        self.relation = relation


def _id_relation(ids, extra=None, sorted_by=None):
    """A one-ID-column relation (plus an optional value column)."""
    if extra is None:
        relation = Relation([Column("ID1", kind="ID")], rows=[(i,) for i in ids])
    else:
        relation = Relation(
            [Column("ID1", kind="ID"), Column("V1", kind="V")],
            rows=list(zip(ids, extra)),
        )
    if sorted_by:
        relation.mark_sorted_by(sorted_by)
    return relation


def _join(views, axis=Axis.DESCENDANT, nested=False):
    if nested:
        return NestedStructuralJoin(
            left=ViewScan("upper", alias="u"),
            right=ViewScan("lower", alias="l"),
            left_column="u.ID1",
            right_column="l.ID1",
            group_column="G",
            axis=axis,
        )
    return StructuralJoin(
        left=ViewScan("upper", alias="u"),
        right=ViewScan("lower", alias="l"),
        left_column="u.ID1",
        right_column="l.ID1",
        axis=axis,
    )


def _both(views, plan):
    """Execute ``plan`` under merge and under the nested-loop oracle."""
    merge = PlanExecutor(views, structural_join_strategy="merge").execute(plan)
    oracle = PlanExecutor(views, structural_join_strategy="nested-loop").execute(plan)
    assert merge.same_contents(oracle), "merge join disagrees with the oracle"
    return merge, oracle


def _ids(*texts):
    return [DeweyID.from_string(text) for text in texts]


class TestStaircaseEdgeCases:
    def test_duplicate_identifiers_on_both_sides(self):
        views = {
            "upper": _Extent(_id_relation(_ids("1.1", "1.1", "1.2"), extra="aab")),
            "lower": _Extent(_id_relation(_ids("1.1.1", "1.1.1", "1.2.9"), extra="xxy")),
        }
        merge, _ = _both(views, _join(views))
        # 2 upper dups x 2 lower dups under 1.1, plus the single 1.2 pair
        assert len(merge) == 5

    def test_self_ancestor_chain(self):
        # a chain a ≺≺ b ≺≺ c where every node is in both extents: equal
        # identifiers must never match (ancestry is strict), prefixes must
        chain = _ids("1", "1.1", "1.1.1")
        views = {
            "upper": _Extent(_id_relation(chain)),
            "lower": _Extent(_id_relation(chain)),
        }
        merge, _ = _both(views, _join(views))
        assert len(merge) == 3  # (1,1.1), (1,1.1.1), (1.1,1.1.1)
        pairs = {(str(row[0]), str(row[1])) for row in merge.rows}
        assert ("1", "1") not in pairs and ("1.1", "1.1") not in pairs

    def test_parent_axis_on_deep_chain(self):
        chain = _ids("1", "1.1", "1.1.1", "1.1.1.1")
        views = {
            "upper": _Extent(_id_relation(chain)),
            "lower": _Extent(_id_relation(chain)),
        }
        merge, _ = _both(views, _join(views, axis=Axis.CHILD))
        pairs = {(str(row[0]), str(row[1])) for row in merge.rows}
        assert pairs == {("1", "1.1"), ("1.1", "1.1.1"), ("1.1.1", "1.1.1.1")}

    def test_empty_extents(self):
        empty = _id_relation([])
        populated = _id_relation(_ids("1.1", "1.1.2"))
        for upper, lower in [(empty, populated), (populated, empty), (empty, empty)]:
            views = {"upper": _Extent(upper), "lower": _Extent(lower)}
            merge, _ = _both(views, _join(views))
            assert len(merge) == 0
            nested_merge, _ = _both(views, _join(views, nested=True))
            assert len(nested_merge) == len(upper.rows)  # empty groups kept

    def test_mixed_string_and_dewey_columns(self):
        # _as_dewey coerces strings, DeweyIDs and None; the merge must see
        # the same world the oracle sees
        views = {
            "upper": _Extent(_id_relation(["1.1", DeweyID.from_string("1.2"), None])),
            "lower": _Extent(_id_relation([DeweyID.from_string("1.1.3"), "1.2.1", None])),
        }
        merge, _ = _both(views, _join(views))
        assert len(merge) == 2  # the None rows never match anything

    def test_nested_join_keeps_null_left_rows(self):
        views = {
            "upper": _Extent(_id_relation([None, "1.1"], extra="na")),
            "lower": _Extent(_id_relation(_ids("1.1.1", "1.1.2"))),
        }
        nested_merge, oracle = _both(views, _join(views, nested=True))
        assert len(nested_merge) == 2 == len(oracle)
        groups = {row[1]: len(row[-1]) for row in nested_merge.rows}
        assert groups == {"n": 0, "a": 2}

    def test_non_identifier_values_raise(self):
        views = {
            "upper": _Extent(_id_relation([42])),
            "lower": _Extent(_id_relation(_ids("1.1"))),
        }
        with pytest.raises(PlanExecutionError):
            PlanExecutor(views).execute(_join(views))
        with pytest.raises(AlgebraError):
            as_dewey(object())

    def test_unsorted_inputs_fall_back_to_sort_then_merge(self):
        # extents deliberately delivered in reverse document order and
        # *without* the sorted annotation: the merge must sort first
        upper = _id_relation(list(reversed(_ids("1.1", "1.2", "1.3"))))
        lower = _id_relation(list(reversed(_ids("1.1.1", "1.2.1", "1.3.9.2"))))
        assert upper.sorted_by is None
        views = {"upper": _Extent(upper), "lower": _Extent(lower)}
        merge, _ = _both(views, _join(views))
        assert len(merge) == 3

    def test_wrongly_claimed_sort_annotation_is_trusted(self):
        # the annotation is a contract: marking an unsorted relation sorted
        # skips the sort, so the merge may legitimately miss matches — this
        # documents that the flag is trusted, not re-verified
        lying = _id_relation(list(reversed(_ids("1.1", "1.2"))))
        lying.mark_sorted_by("ID1")
        views = {
            "upper": _Extent(lying),
            "lower": _Extent(_id_relation(_ids("1.1.5", "1.2.5"))),
        }
        result = PlanExecutor(views).execute(_join(views))
        assert len(result) <= 2


class TestSortedFlagLifecycle:
    def test_view_scan_qualifies_the_annotation(self):
        relation = _id_relation(_ids("1.1", "1.2"), sorted_by="ID1")
        executor = PlanExecutor({"upper": _Extent(relation)})
        result = executor.execute(ViewScan("upper", alias="u"))
        assert result.sorted_by == "u.ID1"

    def test_selection_preserves_the_annotation(self):
        relation = _id_relation(_ids("1.1", "1.2"), extra="ab", sorted_by="ID1")
        executor = PlanExecutor({"upper": _Extent(relation)})
        plan = Selection(
            child=ViewScan("upper", alias="u"),
            column="u.V1",
            formula=ValueFormula.eq("a"),
        )
        result = executor.execute(plan)
        assert result.sorted_by == "u.ID1"
        assert len(result) == 1

    def test_projection_keeps_annotation_only_when_column_survives(self):
        relation = _id_relation(_ids("1.1", "1.2"), extra="ab", sorted_by="ID1")
        executor = PlanExecutor({"upper": _Extent(relation)})
        kept = executor.execute(
            Projection(child=ViewScan("upper", alias="u"), columns=["u.ID1"])
        )
        assert kept.sorted_by == "u.ID1"
        dropped = executor.execute(
            Projection(child=ViewScan("upper", alias="u"), columns=["u.V1"])
        )
        assert dropped.sorted_by is None

    def test_projection_rename_follows_the_annotation(self):
        relation = _id_relation(_ids("1.1", "1.2"), sorted_by="ID1")
        executor = PlanExecutor({"upper": _Extent(relation)})
        result = executor.execute(
            Projection(
                child=ViewScan("upper", alias="u"),
                columns=["u.ID1"],
                renames={"u.ID1": "the_id"},
            )
        )
        assert result.sorted_by == "the_id"

    def test_merge_join_output_is_sorted_on_the_descendant_column(self):
        views = {
            "upper": _Extent(_id_relation(_ids("1.1", "1.2"), sorted_by="ID1")),
            "lower": _Extent(_id_relation(_ids("1.1.1", "1.2.1"), sorted_by="ID1")),
        }
        result = PlanExecutor(views).execute(_join(views))
        assert result.sorted_by == "l.ID1"
        identifiers = [row[1] for row in result.rows]
        assert identifiers == sorted(identifiers, key=lambda i: i.components)

    def test_relation_sort_helper_places_nulls_first_and_marks(self):
        relation = _id_relation(["1.2", None, "1.1"])
        ordered = relation.sorted_in_dewey_order("ID1")
        assert ordered.sorted_by == "ID1"
        assert [None if v is None else str(v) for (v,) in ordered.rows] == [
            None,
            "1.1",
            "1.2",
        ]
        # already-annotated relations are returned as-is
        assert ordered.sorted_in_dewey_order("ID1") is ordered

    def test_mark_sorted_by_validates_the_column(self):
        relation = _id_relation(_ids("1.1"))
        with pytest.raises(AlgebraError):
            relation.mark_sorted_by("nope")
        assert relation.mark_sorted_by(None).sorted_by is None

    def test_view_set_reports_the_sorted_extent_guarantee(self):
        from repro import MaterializedView, parse_parenthesized, parse_pattern
        from repro.views.store import ViewSet
        from repro.views.view import IdScheme

        doc = parse_parenthesized('site(item(name="pen") item(name="ink"))')
        views = ViewSet(
            [
                MaterializedView(
                    parse_pattern("site(//item[ID,V])", name="dewey_view"), doc
                ),
                MaterializedView(
                    parse_pattern("site(//item[V])", name="no_id_view"), doc
                ),
                MaterializedView(
                    parse_pattern("site(//item[ID,V])", name="opaque_view"),
                    doc,
                    id_scheme=IdScheme.opaque(),
                ),
            ]
        )
        assert views.dewey_sort_columns() == {
            "dewey_view": "ID1",
            "no_id_view": None,
            "opaque_view": None,
        }
        # the guarantee matches what the extents actually carry
        assert views["dewey_view"].relation.sorted_by == "ID1"
        assert views["opaque_view"].relation.sorted_by is None
