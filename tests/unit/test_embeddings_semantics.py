"""Unit tests for embeddings and the two pattern-evaluation semantics."""

from repro import parse_parenthesized, parse_pattern
from repro.algebra.tuples import Relation
from repro.patterns.embedding import EmbeddingMode, find_embeddings, has_embedding
from repro.patterns.semantics import evaluate_node_tuples, evaluate_pattern, pattern_schema


class TestEmbeddings:
    def test_embedding_maps_root_to_root(self, figure2_document):
        pattern = parse_pattern("a(//b[R])")
        embeddings = find_embeddings(pattern, figure2_document.root)
        assert embeddings
        for embedding in embeddings:
            assert embedding[pattern.root] is figure2_document.root

    def test_child_vs_descendant_axes(self):
        doc = parse_parenthesized("a(b(c))")
        assert has_embedding(parse_pattern("a(//c[R])"), doc.root)
        assert not has_embedding(parse_pattern("a(/c[R])"), doc.root)

    def test_wildcard_matches_any_label(self):
        doc = parse_parenthesized("a(x(c) y)")
        embeddings = find_embeddings(parse_pattern("a(/*(/c[R]))"), doc.root)
        assert len(embeddings) == 1

    def test_figure2_embedding_count(self, figure2_document):
        # p = a(//*(/b, /d)) from Figure 2/3: the * matches /a/c and /a/d/b
        pattern = parse_pattern("a(//*[R](/b, /d))")
        embeddings = find_embeddings(pattern, figure2_document.root)
        star = pattern.nodes()[1]
        images = {embedding[star].path for embedding in embeddings}
        assert images == {"/a/c", "/a/d/b"}

    def test_value_predicates_checked_on_documents(self):
        doc = parse_parenthesized('a(b="3" b="7")')
        pattern = parse_pattern("a(/b[R]{v>5})")
        embeddings = find_embeddings(pattern, doc.root)
        assert len(embeddings) == 1
        assert embeddings[0][pattern.nodes()[1]].value == 7

    def test_summary_mode_ignores_predicates(self, figure2_summary):
        pattern = parse_pattern("a(/b[R]{v>1000})")
        assert has_embedding(pattern, figure2_summary.root, EmbeddingMode.SUMMARY)

    def test_embedding_limit(self, figure2_document):
        pattern = parse_pattern("a(//b[R])")
        assert len(find_embeddings(pattern, figure2_document.root, limit=2)) == 2


class TestNodeTupleSemantics:
    def test_conjunctive_result(self, figure2_document):
        pattern = parse_pattern("a(//b(//e[R]))")
        tuples = evaluate_node_tuples(pattern, figure2_document.root)
        assert len(tuples) == 1
        (result,) = list(tuples)
        assert result[0].label == "e"

    def test_optional_edge_produces_null(self):
        doc = parse_parenthesized("a(c(b) c)")
        pattern = parse_pattern("a(/c[R](/?b[R]))")
        tuples = evaluate_node_tuples(pattern, doc.root)
        values = {(c.label if c else None, b.label if b else None) for c, b in tuples}
        assert ("c", "b") in values
        assert ("c", None) in values

    def test_optional_null_only_when_no_match(self):
        # Definition 4.1(3b): a match must be used when one exists
        doc = parse_parenthesized("a(c(b))")
        pattern = parse_pattern("a(/c[R](/?b[R]))")
        tuples = evaluate_node_tuples(pattern, doc.root)
        assert all(b is not None for _, b in tuples)

    def test_required_edge_fails_without_match(self):
        doc = parse_parenthesized("a(c)")
        pattern = parse_pattern("a(/c(/b[R]))")
        assert evaluate_node_tuples(pattern, doc.root) == set()

    def test_figure10_example(self):
        # p1(t) = {(c1,b2),(c1,b3),(c2,None)} in the paper's Figure 10: the
        # first c contributes both b children, the second c contributes ⊥
        doc = parse_parenthesized("a(c(b d(e) b(f)) c(d))")
        pattern = parse_pattern("a(/c[R](/?b[R](/?*), /?d(/e)))")
        tuples = evaluate_node_tuples(pattern, doc.root)
        assert len(tuples) == 3
        assert sum(1 for _, b in tuples if b is None) == 1
        assert sum(1 for _, b in tuples if b is not None) == 2


class TestConcreteSemantics:
    def test_schema_column_names(self):
        pattern = parse_pattern("site(//item[ID](/name[V], //?~listitem(/keyword[V])))")
        columns, _ = pattern_schema(pattern)
        assert [c.name for c in columns] == ["ID1", "V2", "A3"]
        assert [c.kind for c in columns] == ["ID", "V", "NESTED"]

    def test_attribute_extraction(self):
        doc = parse_parenthesized('a(b="7")')
        pattern = parse_pattern("a(/b[ID,L,V,C])")
        relation = evaluate_pattern(pattern, doc)
        assert relation.column_names == ["ID1", "L1", "V1", "C1"]
        row = relation.rows[0]
        assert str(row[0]) == "1.1"
        assert row[1] == "b"
        assert row[2] == 7
        assert row[3].label == "b"

    def test_optional_attribute_is_null(self):
        doc = parse_parenthesized('a(b="1" b="2"(c="x"))')
        pattern = parse_pattern("a(/b[V](/?c[V]))")
        relation = evaluate_pattern(pattern, doc)
        values = {tuple(row) for row in relation.rows}
        assert (1, None) in values
        assert (2, "x") in values

    def test_nested_edge_groups_matches(self, auction_document):
        pattern = parse_pattern("site(//item[ID](/name[V], //?~listitem(//keyword[V])))")
        relation = evaluate_pattern(pattern, auction_document)
        assert len(relation) == 3  # one tuple per item
        by_name = {row[1]: row[2] for row in relation.rows}
        assert isinstance(by_name["pen"], Relation)
        assert len(by_name["pen"]) == 2  # two keywords under the pen item
        assert len(by_name["vase"]) == 0  # empty nested table

    def test_required_nested_edge_drops_unmatched(self, auction_document):
        pattern = parse_pattern("site(//item[ID](/~mailbox(/mail(/from[V]))))")
        relation = evaluate_pattern(pattern, auction_document)
        assert len(relation) == 2  # the ink item has no mailbox

    def test_duplicate_elimination(self):
        doc = parse_parenthesized('a(b(c="1") b(c="1"))')
        pattern = parse_pattern("a(//c[V])")
        relation = evaluate_pattern(pattern, doc)
        assert len(relation) == 1

    def test_existential_branch_filters(self, auction_document):
        pattern = parse_pattern("site(//item[ID](/name[V], /mailbox(/mail)))")
        relation = evaluate_pattern(pattern, auction_document)
        names = {row[1] for row in relation.rows}
        assert names == {"pen", "vase"}
