"""Unit tests for summary-based canonical models (Section 2.4, 4.1-4.3)."""

from repro import parse_pattern, summary_from_paths
from repro.canonical import annotate_paths, canonical_model, is_satisfiable
from repro.canonical.model import associated_paths


class TestAssociatedPaths:
    def test_figure3_annotation(self, figure2_summary):
        # Figure 3 annotates the * of p = a(//*(/b,/d)) with paths {3, 5} (the
        # two summary nodes that have both a b and a d child)
        pattern = parse_pattern("a(//*[R](/b, /d))")
        annotate_paths(pattern, figure2_summary)
        star = pattern.nodes()[1]
        labels = {figure2_summary.node_by_number(n).path for n in star.annotated_paths}
        assert labels == {"/a/c", "/a/d/b"}

    def test_root_maps_to_summary_root(self, figure2_summary):
        pattern = parse_pattern("a(//b[R])")
        paths = associated_paths(pattern, figure2_summary)
        assert {s.number for s in paths[id(pattern.root)]} == {1}

    def test_unmatchable_node_has_empty_paths(self, figure2_summary):
        pattern = parse_pattern("a(//nothere[R])")
        annotate_paths(pattern, figure2_summary)
        assert pattern.nodes()[1].annotated_paths == frozenset()

    def test_optional_branch_does_not_block_parent(self, figure2_summary):
        pattern = parse_pattern("a(/?nothere, //b[R])")
        annotate_paths(pattern, figure2_summary)
        assert pattern.root.annotated_paths
        assert pattern.nodes()[2].annotated_paths


class TestCanonicalModel:
    def test_figure3_model_size(self, figure2_summary):
        pattern = parse_pattern("a(//*[R](/b, /d))")
        trees = canonical_model(pattern, figure2_summary)
        assert len(trees) == 2
        return_labels = {
            figure2_summary.node_by_number(t.return_paths()[0]).path for t in trees
        }
        assert return_labels == {"/a/c", "/a/d/b"}

    def test_duplicate_embeddings_are_merged(self, figure2_summary):
        # p' = /a//*//e : both choices of * yield the same canonical tree
        pattern = parse_pattern("a(//*(//e[R]))")
        trees = canonical_model(pattern, figure2_summary)
        assert len(trees) == 1

    def test_chains_fill_in_intermediate_nodes(self, figure2_summary):
        pattern = parse_pattern("a(//e[R])")
        # strong closure disabled so only the connecting chain is built
        trees = canonical_model(pattern, figure2_summary, use_strong_closure=False)
        assert len(trees) == 1
        labels = [n.label for n in trees[0].nodes()]
        # /a/d/b/e requires the d and b chain nodes to be present
        assert labels == ["a", "d", "b", "e"]

    def test_strong_closure_adds_mandatory_children(self):
        # Figure 8: under strong edges, the canonical tree of a(//d) also
        # contains the strong children of the nodes it traverses
        summary = summary_from_paths(
            [
                "/a",
                ("/a/b", True),
                ("/a/b/c", True),
                ("/a/b/c/b", True),
                "/a/b/c/d",
                "/a/b/e",
                ("/a/f", True),
            ]
        )
        pattern = parse_pattern("a(//d[R])")
        trees = canonical_model(pattern, summary)
        assert len(trees) == 1
        labels = sorted(n.summary_node.path for n in trees[0].nodes())
        assert "/a/f" in labels  # strong closure at the root
        assert "/a/b/c/b" in labels  # strong closure below c
        without = canonical_model(pattern, summary, use_strong_closure=False)
        assert "/a/f" not in {n.summary_node.path for n in without[0].nodes()}

    def test_decorated_trees_carry_formulas(self, figure2_summary):
        pattern = parse_pattern("a(//c[R]{v>4})")
        trees = canonical_model(pattern, figure2_summary)
        decorated = [n for t in trees for n in t.nodes() if not n.formula.is_true()]
        assert decorated
        assert all(n.label == "c" for n in decorated)

    def test_optional_edges_expand_the_model(self):
        # a plain summary without strong edges, so the erased variant is not
        # re-filled by strong closure and stays distinct
        summary = summary_from_paths(["/a", "/a/c", "/a/c/b"])
        strict = parse_pattern("a(/c[R](/b))")
        optional = parse_pattern("a(/c[R](/?b))")
        assert len(canonical_model(strict, summary)) == 1
        assert len(canonical_model(optional, summary)) == 2
        # erased variants mark the missing return node as None
        optional_returning = parse_pattern("a(/c[R](/?b[R]))")
        trees = canonical_model(optional_returning, summary)
        assert any(None in t.return_paths() for t in trees)

    def test_max_trees_cap(self, figure2_summary):
        pattern = parse_pattern("a(//*[R], //*[R])")
        trees = canonical_model(pattern, figure2_summary, max_trees=3)
        assert len(trees) == 3

    def test_model_of_unsatisfiable_pattern_is_empty(self, figure2_summary):
        assert canonical_model(parse_pattern("a(/e[R])"), figure2_summary) == []


class TestSatisfiability:
    def test_satisfiable_patterns(self, figure2_summary):
        assert is_satisfiable(parse_pattern("a(//e[R])"), figure2_summary)
        assert is_satisfiable(parse_pattern("a(//b(/e[R]))"), figure2_summary)

    def test_unsatisfiable_patterns(self, figure2_summary):
        assert not is_satisfiable(parse_pattern("a(/e[R])"), figure2_summary)
        assert not is_satisfiable(parse_pattern("a(//zzz[R])"), figure2_summary)

    def test_optional_branch_does_not_affect_satisfiability(self, figure2_summary):
        assert is_satisfiable(parse_pattern("a(//?zzz[R], /b)"), figure2_summary)

    def test_wrong_root_label_is_unsatisfiable(self, figure2_summary):
        assert not is_satisfiable(parse_pattern("z(//b[R])"), figure2_summary)
