"""Unit tests for Dewey structural identifiers."""

import pytest

from repro import DeweyID
from repro.errors import InvalidDeweyIDError


class TestConstruction:
    def test_root_is_single_component(self):
        assert DeweyID.root().components == (1,)

    def test_from_string_round_trip(self):
        identifier = DeweyID.from_string("1.3.2")
        assert identifier.components == (1, 3, 2)
        assert str(identifier) == "1.3.2"

    def test_rejects_empty(self):
        with pytest.raises(InvalidDeweyIDError):
            DeweyID(())

    def test_rejects_non_positive_components(self):
        with pytest.raises(InvalidDeweyIDError):
            DeweyID((1, 0))

    def test_rejects_malformed_text(self):
        with pytest.raises(InvalidDeweyIDError):
            DeweyID.from_string("1.x.2")

    def test_depth_and_ordinal(self):
        identifier = DeweyID((1, 4, 2))
        assert identifier.depth == 3
        assert identifier.ordinal == 2


class TestStructuralRelationships:
    def test_parent_of_child(self):
        child = DeweyID((1, 2, 3))
        assert child.parent() == DeweyID((1, 2))

    def test_root_has_no_parent(self):
        with pytest.raises(InvalidDeweyIDError):
            DeweyID.root().parent()

    def test_child_constructor(self):
        assert DeweyID((1,)).child(5) == DeweyID((1, 5))

    def test_child_ordinal_must_be_positive(self):
        with pytest.raises(InvalidDeweyIDError):
            DeweyID((1,)).child(0)

    def test_ancestor_derivation(self):
        identifier = DeweyID((1, 2, 3, 4))
        assert identifier.ancestor(2) == DeweyID((1, 2))
        assert identifier.ancestor(0) == identifier

    def test_ancestor_beyond_root_fails(self):
        with pytest.raises(InvalidDeweyIDError):
            DeweyID((1, 2)).ancestor(2)

    def test_is_ancestor_of(self):
        assert DeweyID((1,)).is_ancestor_of(DeweyID((1, 3, 2)))
        assert not DeweyID((1, 3, 2)).is_ancestor_of(DeweyID((1,)))
        assert not DeweyID((1, 2)).is_ancestor_of(DeweyID((1, 3, 1)))

    def test_ancestor_is_strict(self):
        assert not DeweyID((1, 2)).is_ancestor_of(DeweyID((1, 2)))

    def test_is_parent_of(self):
        assert DeweyID((1, 2)).is_parent_of(DeweyID((1, 2, 1)))
        assert not DeweyID((1, 2)).is_parent_of(DeweyID((1, 2, 1, 1)))
        assert not DeweyID((1, 2)).is_parent_of(DeweyID((1, 3, 1)))

    def test_is_child_and_descendant(self):
        assert DeweyID((1, 2, 1)).is_child_of(DeweyID((1, 2)))
        assert DeweyID((1, 2, 1)).is_descendant_of(DeweyID((1,)))

    def test_common_ancestor(self):
        a = DeweyID((1, 2, 3))
        b = DeweyID((1, 2, 5, 1))
        assert a.common_ancestor(b) == DeweyID((1, 2))

    def test_distance_to_ancestor(self):
        node = DeweyID((1, 2, 3, 4))
        assert node.distance_to_ancestor(DeweyID((1, 2))) == 2
        with pytest.raises(InvalidDeweyIDError):
            node.distance_to_ancestor(DeweyID((1, 3)))


class TestOrdering:
    def test_document_order(self):
        ids = [DeweyID((1, 2)), DeweyID((1,)), DeweyID((1, 1, 5)), DeweyID((1, 1))]
        assert sorted(ids) == [
            DeweyID((1,)),
            DeweyID((1, 1)),
            DeweyID((1, 1, 5)),
            DeweyID((1, 2)),
        ]

    def test_ancestor_sorts_before_descendant(self):
        assert DeweyID((1, 2)) < DeweyID((1, 2, 1))

    def test_hash_and_equality(self):
        assert hash(DeweyID((1, 2))) == hash(DeweyID((1, 2)))
        assert DeweyID((1, 2)) != DeweyID((1, 3))
        assert len({DeweyID((1, 2)), DeweyID((1, 2)), DeweyID((1, 3))}) == 2
