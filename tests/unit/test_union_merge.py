"""``UnionPlan``'s ordered multiway merge vs. the order-blind oracle.

The merge union must (a) produce exactly the set the old
``Relation.union``-chain produced, (b) keep the ``sorted_by`` annotation
whenever every branch shares the Dewey sort column position, and (c) fall
back — annotation dropped, contents identical — whenever it cannot prove
order.  The oracle here *is* the old implementation, inlined.
"""

from __future__ import annotations

from functools import reduce

import pytest

from repro import MaterializedView, parse_parenthesized, parse_pattern
from repro.algebra.execution import PlanExecutor
from repro.algebra.operators import Projection, UnionPlan, ViewScan
from repro.algebra.tuples import Column, Relation, as_dewey
from repro.errors import PlanExecutionError
from repro.planning.cost import plan_sorted_on
from repro.xmltree.ids import DeweyID


def _oracle_union(relations):
    """The pre-merge implementation: chained set unions, order-blind."""
    return reduce(lambda left, right: left.union(right), relations).distinct()


def _assert_dewey_ordered(relation):
    identifiers = [
        as_dewey(row[relation.column_index(relation.sorted_by)])
        for row in relation.rows
    ]
    non_null = [identifier for identifier in identifiers if identifier is not None]
    assert non_null == sorted(non_null), "sorted_by annotation must hold"


@pytest.fixture()
def document():
    return parse_parenthesized(
        'site(item(name="pen") item(name="ink") item(name="pen") gadget(name="usb"))'
    )


@pytest.fixture()
def views(document):
    return {
        "items": MaterializedView(
            parse_pattern("site(//item[ID](/name[V]))", name="items"), document
        ),
        "gadgets": MaterializedView(
            parse_pattern("site(//gadget[ID](/name[V]))", name="gadgets"), document
        ),
    }


def test_merge_union_keeps_order_and_matches_oracle(views):
    plan = UnionPlan(plans=(ViewScan("items"), ViewScan("gadgets")))
    executor = PlanExecutor(views)
    branches = [executor.execute(branch) for branch in plan.plans]
    result = executor.execute(plan)
    assert result.sorted_by == "items.ID1", (
        "a union of same-position Dewey-sorted branches must stay annotated"
    )
    _assert_dewey_ordered(result)
    assert result.same_contents(_oracle_union(branches))
    assert len(result) == 4


def test_merge_union_deduplicates_across_branches(views):
    plan = UnionPlan(plans=(ViewScan("items"), ViewScan("items", alias="again")))
    executor = PlanExecutor(views)
    result = executor.execute(plan)
    assert len(result) == 3, "identical branch rows must collapse"
    _assert_dewey_ordered(result)


def test_merge_union_deduplicates_within_identifier_runs():
    left = Relation([Column("ID", kind="ID"), Column("V")])
    left.extend([(DeweyID((1, 1)), "a"), (DeweyID((1, 1)), "b"), (DeweyID((1, 3)), "c")])
    left.mark_sorted_by("ID")
    right = Relation([Column("ID", kind="ID"), Column("V")])
    right.extend([(DeweyID((1, 1)), "b"), (DeweyID((1, 2)), "d"), (DeweyID((1, 3)), "c")])
    right.mark_sorted_by("ID")
    merged = PlanExecutor({})._merge_union([left, right])
    assert merged is not None
    assert len(merged) == 4  # (1.1,a) (1.1,b) (1.2,d) (1.3,c)
    _assert_dewey_ordered(merged)
    assert merged.same_contents(_oracle_union([left, right]))


def test_merge_union_places_null_identifiers_first():
    left = Relation([Column("ID", kind="ID")])
    left.extend([(None,), (DeweyID((1, 2)),)])
    left.mark_sorted_by("ID")
    right = Relation([Column("ID", kind="ID")])
    right.extend([(DeweyID((1, 1)),), (None,)])
    right.mark_sorted_by("ID")
    merged = PlanExecutor({})._merge_union([left, right])
    assert merged is not None
    assert merged.rows[0] == (None,) and len(merged) == 3
    _assert_dewey_ordered(merged)


def test_unsorted_branch_falls_back_to_oracle(views):
    # projecting away the ID column leaves the branch unsorted
    plan = UnionPlan(
        plans=(
            Projection(child=ViewScan("items"), columns=("items.V2",)),
            Projection(child=ViewScan("items", alias="b"), columns=("b.ID1",)),
        )
    )
    executor = PlanExecutor(views)
    branches = [executor.execute(branch) for branch in plan.plans]
    assert branches[0].sorted_by is None
    result = executor.execute(plan)
    assert result.sorted_by is None
    assert result.same_contents(_oracle_union(branches))


def test_mismatched_sort_positions_fall_back():
    left = Relation([Column("ID", kind="ID"), Column("V")])
    left.extend([(DeweyID((1, 1)), "a")])
    left.mark_sorted_by("ID")
    right = Relation([Column("V"), Column("ID", kind="ID")])
    right.extend([("b", DeweyID((1, 2)))])
    right.mark_sorted_by("ID")  # same name, different position
    assert PlanExecutor({})._merge_union([left, right]) is None


def test_identifierless_node_cells_count_as_nulls():
    # an XMLNode with no assigned Dewey ID is a null to as_dewey (and to
    # sorted_in_dewey_order); the merge must treat it the same, not crash
    from repro.xmltree.node import XMLNode

    left = Relation([Column("ID", kind="ID")])
    left.extend([(XMLNode("detached"),), (DeweyID((1, 2)),)])
    left.mark_sorted_by("ID")
    right = Relation([Column("ID", kind="ID")])
    right.extend([(DeweyID((1, 1)),)])
    right.mark_sorted_by("ID")
    merged = PlanExecutor({})._merge_union([left, right])
    assert merged is not None and len(merged) == 3
    assert isinstance(merged.rows[0][0], XMLNode)
    _assert_dewey_ordered(merged)


def test_non_dewey_sort_values_fall_back():
    left = Relation([Column("ID", kind="ID")])
    left.extend([("not-an-identifier",)])
    left.mark_sorted_by("ID")
    assert PlanExecutor({})._merge_union([left]) is None


def test_empty_union_still_raises():
    with pytest.raises(PlanExecutionError, match="at least one branch"):
        PlanExecutor({}).execute(UnionPlan(plans=()))


def test_static_order_analysis_accepts_provable_unions(views):
    # both branches scan the same view under the same alias-qualified
    # column name, so the static rule can prove the output order
    provable = UnionPlan(plans=(ViewScan("items"), ViewScan("items")))
    assert plan_sorted_on(provable, "items.ID1")
    # different aliases → different column names → statically unprovable,
    # even though the run-time merge will keep the annotation
    unprovable = UnionPlan(plans=(ViewScan("items"), ViewScan("gadgets")))
    assert not plan_sorted_on(unprovable, "items.ID1")
    assert not plan_sorted_on(UnionPlan(plans=()), "items.ID1")
