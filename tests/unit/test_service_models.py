"""The service request models: strict validation, and the relation codec.

The contract under test: malformed payloads always raise a typed
:class:`RequestValidationError` (never construct a partial request), and
``relation_from_payload(relation_to_payload(r))`` rebuilds a relation whose
re-encoding is *identical* — the property the HTTP round-trip tests and the
load tester's row-identity check both stand on.
"""

from __future__ import annotations

import pytest

from repro import Relation, parse_parenthesized
from repro.errors import RequestValidationError, ServiceError
from repro.service.models import (
    SCHEMA_VERSION,
    DdlRequest,
    ExplainRequest,
    IngestRequest,
    PrepareRequest,
    QueryManyRequest,
    QueryRequest,
    relation_from_payload,
    relation_to_payload,
)
from repro.xmltree.ids import DeweyID


# --------------------------------------------------------------------------- #
# strict validation
# --------------------------------------------------------------------------- #
def test_query_request_accepts_minimal_payload():
    request = QueryRequest.from_payload({"query": "site(//item[ID])"})
    assert request.query == "site(//item[ID])"
    assert request.name is None


def test_query_request_accepts_explicit_schema_version():
    request = QueryRequest.from_payload(
        {"schema_version": SCHEMA_VERSION, "query": "q", "name": "n"}
    )
    assert (request.query, request.name) == ("q", "n")


@pytest.mark.parametrize(
    "payload",
    [
        None,
        "site(//item[ID])",
        ["site(//item[ID])"],
        42,
    ],
)
def test_non_object_payloads_are_rejected(payload):
    with pytest.raises(RequestValidationError, match="JSON object"):
        QueryRequest.from_payload(payload)


def test_unsupported_schema_version_is_rejected():
    with pytest.raises(RequestValidationError, match="schema_version"):
        QueryRequest.from_payload({"schema_version": 99, "query": "q"})


def test_unknown_fields_are_rejected():
    with pytest.raises(RequestValidationError, match="unknown field"):
        QueryRequest.from_payload({"query": "q", "qery": "typo"})


def test_missing_required_field_is_rejected():
    with pytest.raises(RequestValidationError, match="missing required"):
        QueryRequest.from_payload({"name": "q"})


@pytest.mark.parametrize("bad", [1, 1.5, True, ["q"], {"q": 1}])
def test_wrongly_typed_query_is_rejected(bad):
    with pytest.raises(RequestValidationError, match="'query' must be"):
        QueryRequest.from_payload({"query": bad})


def test_bool_is_not_accepted_where_int_semantics_differ():
    # bool subclasses int in python; the wire contract still rejects it
    with pytest.raises(RequestValidationError):
        ExplainRequest.from_payload({"query": "q", "analyze": "yes"})
    request = ExplainRequest.from_payload({"query": "q", "analyze": True})
    assert request.analyze is True


def test_query_many_requires_non_empty_string_list():
    with pytest.raises(RequestValidationError, match="non-empty"):
        QueryManyRequest.from_payload({"queries": []})
    with pytest.raises(RequestValidationError, match=r"queries\[1\]"):
        QueryManyRequest.from_payload({"queries": ["ok", 2]})
    request = QueryManyRequest.from_payload({"queries": ["a", "b"]})
    assert request.queries == ["a", "b"]


def test_prepare_request_mirrors_query_request():
    request = PrepareRequest.from_payload({"query": "q", "name": "stmt"})
    assert (request.query, request.name) == ("q", "stmt")
    with pytest.raises(RequestValidationError):
        PrepareRequest.from_payload({})


def test_ddl_request_validates_op_and_pattern():
    request = DdlRequest.from_payload(
        {"op": "create_view", "name": "v", "pattern": "site(//item[ID])"}
    )
    assert request.materialize is True
    with pytest.raises(RequestValidationError, match="unknown ddl op"):
        DdlRequest.from_payload({"op": "alter_view", "name": "v"})
    with pytest.raises(RequestValidationError, match="requires a 'pattern'"):
        DdlRequest.from_payload({"op": "create_view", "name": "v"})
    # drop needs no pattern
    request = DdlRequest.from_payload({"op": "drop_view", "name": "v"})
    assert request.pattern is None


def test_ingest_request_validates_per_op_requirements():
    insert = IngestRequest.from_payload(
        {"op": "insert", "parent": "1", "subtree": ["item", None, []]}
    )
    assert insert.decoded_subtree().label == "item"
    with pytest.raises(RequestValidationError, match="unknown ingest op"):
        IngestRequest.from_payload({"op": "upsert", "parent": "1"})
    with pytest.raises(RequestValidationError, match="'subtree'"):
        IngestRequest.from_payload({"op": "insert", "parent": "1"})
    with pytest.raises(RequestValidationError, match="'dewey'"):
        IngestRequest.from_payload({"op": "delete"})


def test_malformed_subtree_encoding_is_a_validation_error():
    request = IngestRequest.from_payload(
        {"op": "insert", "parent": "1", "subtree": ["only-a-label"]}
    )
    with pytest.raises(RequestValidationError, match="malformed 'subtree'"):
        request.decoded_subtree()


# --------------------------------------------------------------------------- #
# the relation codec
# --------------------------------------------------------------------------- #
def test_atomic_relation_roundtrip():
    relation = Relation(["V", "N"], [["pen", 1], ["ink", 2], [None, 3]])
    payload = relation_to_payload(relation)
    assert payload["columns"] == ["V", "N"]
    assert payload["row_count"] == 3
    rebuilt = relation_from_payload(payload)
    assert rebuilt.rows == relation.rows
    assert relation_to_payload(rebuilt) == payload


def test_dewey_cells_roundtrip_as_tagged_objects():
    relation = Relation(["ID"], [[DeweyID.from_string("1.2.3")]])
    payload = relation_to_payload(relation)
    assert payload["rows"][0][0] == {"$type": "dewey", "id": "1.2.3"}
    rebuilt = relation_from_payload(payload)
    assert rebuilt.rows[0][0] == DeweyID.from_string("1.2.3")
    assert relation_to_payload(rebuilt) == payload


def test_node_cells_roundtrip_with_identity_and_content():
    document = parse_parenthesized('site(item(name="pen"))')
    item = document.root.children[0]
    relation = Relation(["C"], [[item]])
    payload = relation_to_payload(relation)
    cell = payload["rows"][0][0]
    assert cell["$type"] == "node" and cell["id"] == str(item.dewey)
    rebuilt = relation_from_payload(payload)
    node = rebuilt.rows[0][0]
    assert node.label == "item" and str(node.dewey) == str(item.dewey)
    assert node.children[0].value == "pen"
    # re-encoding the rebuilt relation is bytewise-stable
    assert relation_to_payload(rebuilt) == payload


def test_nested_relation_cells_roundtrip():
    inner = Relation(["V"], [["pen"]])
    outer = Relation(["R"], [[inner]])
    payload = relation_to_payload(outer)
    assert payload["rows"][0][0]["$type"] == "relation"
    rebuilt = relation_from_payload(payload)
    assert rebuilt.rows[0][0].rows == [("pen",)]
    assert relation_to_payload(rebuilt) == payload


def test_unencodable_cells_raise():
    relation = Relation(["X"], [[object()]])
    with pytest.raises(ServiceError, match="cannot encode"):
        relation_to_payload(relation)


def test_unknown_cell_tag_raises():
    with pytest.raises(ServiceError, match="cannot decode"):
        relation_from_payload(
            {"columns": ["X"], "rows": [[{"$type": "widget"}]], "row_count": 1}
        )


def test_malformed_relation_payload_raises():
    with pytest.raises(ServiceError, match="malformed relation payload"):
        relation_from_payload({"columns": ["X"]})
