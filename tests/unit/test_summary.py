"""Unit tests for structural summaries (Dataguides) and enhanced summaries."""

import pytest

from repro import build_summary, parse_parenthesized, summarize, summary_from_paths
from repro.errors import SummaryError
from repro.summary.index import SummaryIndex


class TestBuildSummary:
    def test_one_node_per_distinct_path(self, figure2_document, figure2_summary):
        document_paths = {node.path for node in figure2_document.iter_nodes()}
        summary_paths = {node.path for node in figure2_summary.iter_nodes()}
        assert summary_paths == document_paths

    def test_summary_smaller_than_document(self, auction_document, auction_summary):
        assert auction_summary.size < auction_document.size

    def test_numbers_are_preorder(self, figure2_summary):
        numbers = [node.number for node in figure2_summary.iter_nodes()]
        assert numbers == list(range(1, figure2_summary.size + 1))

    def test_instance_counts(self):
        doc = parse_parenthesized("a(b b b c(b))")
        summary = build_summary(doc)
        assert summary.node_by_path("/a/b").instance_count == 3
        assert summary.node_by_path("/a/c/b").instance_count == 1

    def test_lookup_by_path_and_number(self, figure2_summary):
        node = figure2_summary.node_by_path("/a/d/b/e")
        assert figure2_summary.node_by_number(node.number) is node
        assert figure2_summary.has_path("/a/c/d")
        assert not figure2_summary.has_path("/a/zzz")

    def test_unknown_path_raises(self, figure2_summary):
        with pytest.raises(SummaryError):
            figure2_summary.node_by_path("/a/nope")

    def test_nodes_with_label(self, figure2_summary):
        assert len(figure2_summary.nodes_with_label("b")) == 4
        assert len(figure2_summary.nodes_with_label("*")) == figure2_summary.size


class TestEnhancedSummary:
    def test_strong_edge_detected(self):
        # every a has a b child; only some have c children
        doc = parse_parenthesized("r(a(b c) a(b) a(b b))")
        summary = build_summary(doc)
        assert summary.node_by_path("/r/a/b").strong
        assert not summary.node_by_path("/r/a/c").strong

    def test_one_to_one_edge_detected(self):
        doc = parse_parenthesized("r(a(b) a(b) a(b b))")
        summary = build_summary(doc)
        b = summary.node_by_path("/r/a/b")
        assert b.strong
        assert not b.one_to_one  # one parent has two b children

        doc2 = parse_parenthesized("r(a(b) a(b))")
        summary2 = build_summary(doc2)
        assert summary2.node_by_path("/r/a/b").one_to_one

    def test_edge_counts(self):
        doc = parse_parenthesized("r(a(b) a(b c))")
        summary = build_summary(doc)
        assert summary.strong_edge_count == 2  # r/a and r/a/b
        # only r/a/b is one-to-one: the root has two a children, and c is
        # missing under the first a
        assert summary.one_to_one_edge_count == 1

    def test_conformance_positive(self, figure2_document, figure2_summary):
        assert figure2_summary.conforms(figure2_document)

    def test_conformance_rejects_unknown_path(self, figure2_summary):
        other = parse_parenthesized("a(zzz)")
        assert not figure2_summary.conforms(other)

    def test_conformance_checks_strong_constraints(self):
        doc = parse_parenthesized("r(a(b) a(b))")
        summary = build_summary(doc)
        violating = parse_parenthesized("r(a(b) a)")  # second a lacks the strong b child
        assert not summary.conforms(violating)
        assert summary.conforms(violating, check_constraints=False)


class TestSummaryFromPaths:
    def test_basic_construction(self):
        summary = summary_from_paths(["/a", "/a/b", ("/a/b/c", True), ("/a/d", True, True)])
        assert summary.size == 4
        assert summary.node_by_path("/a/b/c").strong
        assert summary.node_by_path("/a/d").one_to_one

    def test_intermediate_paths_created(self):
        summary = summary_from_paths(["/a/b/c/d"])
        assert summary.has_path("/a/b")
        assert summary.size == 4

    def test_wrong_root_rejected(self):
        with pytest.raises(SummaryError):
            summary_from_paths(["/a", "/b/c"])

    def test_empty_rejected(self):
        with pytest.raises(SummaryError):
            summary_from_paths([])


class TestStatistics:
    def test_summarize_matches_summary(self, auction_document, auction_summary):
        stats = summarize(auction_document, auction_summary)
        assert stats.summary_size == auction_summary.size
        assert stats.document_size == auction_document.size
        assert stats.strong_edges == auction_summary.strong_edge_count
        assert stats.one_to_one_edges == auction_summary.one_to_one_edge_count
        assert stats.max_depth == auction_summary.max_depth
        row = stats.as_row()
        assert row["|S|"] == auction_summary.size


class TestSummaryIndex:
    def test_parent_and_ancestor(self, figure2_summary):
        index = SummaryIndex(figure2_summary)
        a = figure2_summary.node_by_path("/a").number
        d = figure2_summary.node_by_path("/a/d").number
        e = figure2_summary.node_by_path("/a/d/b/e").number
        assert index.is_parent(a, d)
        assert index.is_ancestor(a, e)
        assert not index.is_parent(a, e)
        assert not index.is_ancestor(e, a)
        assert index.related(a, e)

    def test_set_helpers(self, figure2_summary):
        index = SummaryIndex(figure2_summary)
        a = figure2_summary.node_by_path("/a").number
        ab = figure2_summary.node_by_path("/a/b").number
        acd = figure2_summary.node_by_path("/a/c/d").number
        assert index.any_equal({a, ab}, {ab})
        assert index.any_parent({a}, {ab})
        assert index.any_ancestor({a}, {acd})
        assert index.any_related({ab}, {ab, acd})
        assert not index.any_ancestor({acd}, {ab})

    def test_constant_depth_difference(self, figure2_summary):
        index = SummaryIndex(figure2_summary)
        a = figure2_summary.node_by_path("/a").number
        ab = figure2_summary.node_by_path("/a/b").number
        acb = figure2_summary.node_by_path("/a/c/b").number
        assert index.constant_depth_difference({a}, {ab}) == 1
        # two b paths at different depths below /a -> no constant difference
        assert index.constant_depth_difference({a}, {ab, acb}) is None

    def test_chain_labels(self, figure2_summary):
        index = SummaryIndex(figure2_summary)
        a = figure2_summary.node_by_path("/a").number
        e = figure2_summary.node_by_path("/a/d/b/e").number
        assert index.chain_labels(a, e) == ["d", "b", "e"]
