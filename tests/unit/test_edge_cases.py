"""Additional edge-case tests across modules: error paths, odd inputs,
configuration handling and public-API surface checks."""

import pytest

import repro
from repro import (
    DeweyID,
    MaterializedView,
    Rewriter,
    ValueFormula,
    build_summary,
    parse_parenthesized,
    parse_pattern,
)
from repro.errors import PatternError, ReproError, RewritingError
from repro.patterns.semantics import evaluate_node_tuples, evaluate_pattern
from repro.rewriting import RewritingConfig
from repro.views.store import ViewSet


class TestPublicAPI:
    def test_package_exports_are_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_every_error_derives_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not ReproError:
                if obj.__module__ == "repro.errors":
                    assert issubclass(obj, ReproError)

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestPatternEdgeCases:
    def test_single_node_pattern_matches_root_only(self):
        doc = parse_parenthesized("a(b c)")
        pattern = parse_pattern("a[ID]")
        tuples = evaluate_node_tuples(pattern, doc.root)
        assert len(tuples) == 1

    def test_pattern_without_return_nodes_raises_on_evaluation(self):
        from repro.patterns.pattern import PatternNode, TreePattern

        pattern = TreePattern(PatternNode("a"))
        doc = parse_parenthesized("a")
        with pytest.raises(PatternError):
            evaluate_node_tuples(pattern, doc.root)
        with pytest.raises(PatternError):
            evaluate_pattern(pattern, doc)

    def test_root_label_mismatch_gives_empty_result(self):
        doc = parse_parenthesized("a(b)")
        assert evaluate_node_tuples(parse_pattern("z(//b[R])"), doc.root) == set()

    def test_deeply_nested_pattern_evaluation(self):
        doc = parse_parenthesized("a(b(c(d(e(f='x')))))")
        pattern = parse_pattern("a(//b(//c(//d(//e(//f[V])))))")
        relation = evaluate_pattern(pattern, doc)
        assert relation.rows == [("x",)]

    def test_multiple_wildcards(self):
        doc = parse_parenthesized("a(x(k) y(k) z(q))")
        pattern = parse_pattern("a(/*(/k[R]))")
        assert len(evaluate_node_tuples(pattern, doc.root)) == 2

    def test_same_label_siblings_in_pattern(self):
        # two sibling branches with the same label can bind to the same or to
        # different document nodes (standard homomorphism semantics)
        doc = parse_parenthesized("a(b(c) b(d))")
        pattern = parse_pattern("a(/b[R](/c), /b[R](/d))")
        tuples = evaluate_node_tuples(pattern, doc.root)
        assert len(tuples) == 1
        (first, second) = list(tuples)[0]
        assert first is not second


class TestRewriterConfiguration:
    @pytest.fixture()
    def tiny_db(self):
        doc = parse_parenthesized('site(item(name="pen") item(name="ink"))')
        return doc, build_summary(doc)

    def test_stop_at_first_limits_results(self, tiny_db):
        doc, summary = tiny_db
        view = MaterializedView(parse_pattern("site(//item[ID](/name[V]))", name="v"), doc, name="v")
        config = RewritingConfig(stop_at_first=True)
        outcome = Rewriter(summary, [view], config).rewrite(
            parse_pattern("site(//item[ID](/name[V]))", name="q")
        )
        assert len(outcome.rewritings) == 1

    def test_max_rewritings_cap(self, tiny_db):
        doc, summary = tiny_db
        views = [
            MaterializedView(parse_pattern("site(//item[ID](/name[V]))", name=f"v{i}"), doc, name=f"v{i}")
            for i in range(3)
        ]
        config = RewritingConfig(max_rewritings=2)
        outcome = Rewriter(summary, views, config).rewrite(
            parse_pattern("site(//item[ID](/name[V]))", name="q")
        )
        assert len(outcome.rewritings) == 2

    def test_answer_raises_without_rewriting(self, tiny_db):
        doc, summary = tiny_db
        view = MaterializedView(parse_pattern("site(//item[ID])", name="v"), doc, name="v")
        rewriter = Rewriter(summary, [view])
        with pytest.raises(RewritingError):
            rewriter.answer(parse_pattern("site(//item[ID](/name[V]))", name="q"))

    def test_best_prefers_fewest_views(self, tiny_db):
        doc, summary = tiny_db
        views = [
            MaterializedView(parse_pattern("site(//item[ID](/name[V]))", name="wide"), doc, name="wide"),
            MaterializedView(parse_pattern("site(//item[ID])", name="ids"), doc, name="ids"),
            MaterializedView(parse_pattern("site(//name[ID,V])", name="names"), doc, name="names"),
        ]
        outcome = Rewriter(summary, views).rewrite(
            parse_pattern("site(//item[ID](/name[V]))", name="q")
        )
        assert outcome.found
        assert len(outcome.best.views_used) == 1

    def test_rewrite_first_helper(self, tiny_db):
        doc, summary = tiny_db
        view = MaterializedView(parse_pattern("site(//item[ID](/name[V]))", name="v"), doc, name="v")
        rewriting = Rewriter(summary, [view]).rewrite_first(
            parse_pattern("site(//item[ID](/name[V]))", name="q")
        )
        assert rewriting is not None
        missing = Rewriter(summary, [view]).rewrite_first(
            parse_pattern("site(//item[ID](/name[V]{v='zzz'}, //*[C]))", name="q2")
        )
        assert missing is None or missing.plan is not None  # never raises

    def test_viewset_materialize_all(self, tiny_db):
        doc, _ = tiny_db
        store = ViewSet([MaterializedView(parse_pattern("site(//item[ID])", name="v"))])
        assert not store["v"].is_materialized
        store.materialize_all(doc)
        assert store["v"].is_materialized


class TestRelationValueIdentity:
    def test_dewey_and_node_hash_equivalence(self):
        doc = parse_parenthesized("a(b)")
        node = doc.root.children[0]
        from repro.algebra.tuples import _hashable

        assert _hashable(node) == _hashable(node.dewey)
        assert _hashable(DeweyID((1, 1))) == ("<id>", "1.1")

    def test_formula_selection_on_node_content_column(self):
        # a Selection over a column holding XMLNode content compares the
        # node's own value
        from repro.algebra.execution import PlanExecutor
        from repro.algebra.operators import Selection, ViewScan

        doc = parse_parenthesized('a(b="7" b="9")')
        views = ViewSet([MaterializedView(parse_pattern("a(/b[C])", name="v"), doc, name="v")])
        plan = Selection(child=ViewScan("v"), column="v.C1", formula=ValueFormula.gt(8))
        result = PlanExecutor(views).execute(plan)
        assert len(result) == 1
