"""``EXPLAIN`` / ``EXPLAIN ANALYZE`` reports: structure, decisions, actuals.

The acceptance-level property lives in ``test_explain_analyze_fig13_query``:
on a real Figure 13 XMark query pattern, ``PreparedQuery.explain(analyze=
True)`` must report estimated *and* actual rows for every plan operator.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.errors import RewritingError
from repro.session.explain import ExplainReport
from repro.workloads.synthetic import seed_tag_views
from repro.workloads.xmark import generate_xmark_document, xmark_query_patterns

JOIN_QUERY = "site(//item[ID](/name[V], /description[ID]))"


@pytest.fixture()
def db(auction_document):
    database = Database(auction_document)
    database.create_view("site(//item[ID](/name[V]))", name="names")
    database.create_view("site(//description[ID])", name="descriptions")
    yield database
    database.close()


def test_explain_reports_plan_shape_and_estimates(db):
    report = db.explain(JOIN_QUERY, name="q")
    assert isinstance(report, ExplainReport)
    assert not report.analyzed
    assert report.query_name == "q"
    assert report.views_used  # at least one view is scanned
    assert report.chosen_cost > 0
    assert report.alternative_costs[0] == report.chosen_cost
    assert list(report.alternative_costs) == sorted(report.alternative_costs)
    assert report.operators, "the plan tree must be listed"
    assert report.operators[0].depth == 0
    for entry in report.operators:
        assert entry.estimated_rows >= 0
        assert entry.cumulative_cost > 0
        assert entry.actual_rows is None  # no analyze, no actuals


def test_explain_reports_join_order_decisions(db):
    report = db.explain(JOIN_QUERY, name="q")
    decisions = [e.order_decision for e in report.operators if e.order_decision]
    assert decisions, "a join plan must surface its order decisions"
    for decision in decisions:
        assert decision == "merge" or decision.startswith(("sort+merge", "hash"))


def test_explain_analyze_attaches_actuals(db):
    prepared = db.prepare(JOIN_QUERY, name="q")
    report = prepared.explain(analyze=True)
    assert report.analyzed
    assert report.actual_seconds is not None and report.actual_seconds > 0
    assert report.actual_rows == len(prepared.run())
    for entry in report.operators:
        assert entry.actual_rows is not None, entry.description
        assert entry.actual_seconds is not None and entry.actual_seconds >= 0
    # the root's measured size is the result size
    assert report.operators[0].actual_rows == report.actual_rows


def test_explain_text_rendering_mentions_estimates_and_actuals(db):
    text = db.explain(JOIN_QUERY, analyze=True, name="q").to_text()
    assert text.startswith("EXPLAIN ANALYZE 'q'")
    assert "rows≈" in text and "cost≈" in text
    assert "actual rows=" in text and "time=" in text


def test_explain_analyze_fig13_query():
    """Estimated and actual rows for every operator on a fig13 query."""
    document = generate_xmark_document(scale=0.3, seed=548, name="xmark-explain")
    database = Database(document)
    for index, pattern in enumerate(seed_tag_views(database.summary)):
        database.create_view(pattern, name=f"seed{index}_{pattern.name}")

    report = None
    for name, pattern in sorted(
        xmark_query_patterns().items(), key=lambda kv: int(kv[0][1:])
    ):
        try:
            prepared = database.prepare(pattern)
        except RewritingError:
            continue
        report = prepared.explain(analyze=True)
        break
    assert report is not None, "no fig13 query is answerable over the seed views"
    assert report.analyzed and report.operators
    for entry in report.operators:
        assert entry.estimated_rows >= 0, entry.description
        assert entry.actual_rows is not None, (
            f"operator {entry.description} has no measured row count"
        )
    database.close()


# --------------------------------------------------------------------------- #
# dict round-trips (the service tier's wire format)
# --------------------------------------------------------------------------- #
def test_report_to_dict_roundtrip_unanalyzed(db):
    report = db.explain(JOIN_QUERY, name="q")
    data = report.to_dict()
    assert data["query_name"] == "q"
    assert isinstance(data["views_used"], list)
    assert isinstance(data["alternative_costs"], list)
    assert all(isinstance(entry, dict) for entry in data["operators"])
    rebuilt = ExplainReport.from_dict(data)
    assert rebuilt == report
    assert rebuilt.to_text() == report.to_text()


def test_report_to_dict_roundtrip_analyzed(db):
    report = db.explain(JOIN_QUERY, analyze=True, name="q")
    rebuilt = ExplainReport.from_dict(report.to_dict())
    assert rebuilt == report
    assert rebuilt.analyzed and rebuilt.actual_rows == report.actual_rows


def test_report_to_dict_is_json_safe(db):
    import json

    data = db.explain(JOIN_QUERY, analyze=True, name="q").to_dict()
    assert json.loads(json.dumps(data)) == data


def test_from_dict_rejects_malformed_payloads(db):
    report = db.explain(JOIN_QUERY, name="q")
    data = report.to_dict()
    with pytest.raises(ValueError, match="malformed explain report"):
        ExplainReport.from_dict({"query_name": "q"})
    broken = dict(data, operators=[{"description": "x"}])
    with pytest.raises(ValueError, match="malformed explain operator"):
        ExplainReport.from_dict(broken)
