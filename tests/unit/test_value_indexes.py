"""Value indexes over materialised extents: probes, lifecycle, codec.

Contracts under test:

* **probe ≡ filter** — for every formula shape, both index kinds return
  exactly the positions the selection kernel would (``⊥`` rows match only
  the ``true`` formula; positions come back ascending);
* **kind selection** — the bitmap-vs-ordered decision flips exactly at
  :data:`~repro.views.indexes.BITMAP_CARDINALITY_THRESHOLD` distinct values;
* **build-once lifecycle** — one build per column source, survivable by
  unrelated DDL, invalidated by re-materialising DDL (new extent → new
  sources → rebuild), all observable through :data:`INDEX_STATS`;
* **publish/attach** — indexes the parent built travel through the shared
  extent store as an ``XIDX`` trailer and are *attached* (decoded), never
  rebuilt, on the worker side;
* **codec fidelity** — both kinds and every scalar type round-trip.
"""

from __future__ import annotations

import pytest

from repro import Database, MaterializedView, parse_parenthesized, parse_pattern
from repro.algebra.columnar import ColumnBatch
from repro.algebra.kernels import selection_indices
from repro.errors import ExtentStoreError
from repro.patterns.predicates import ValueFormula
from repro.views.extent_store import AttachedExtents, ExtentStore
from repro.views.indexes import (
    BITMAP_CARDINALITY_THRESHOLD,
    INDEX_STATS,
    BitmapIndex,
    OrderedIndex,
    build_index,
    decode_index,
    decode_index_section,
    encode_index,
    encode_index_section,
    index_for_source,
)
from repro.views.store import ViewSet


@pytest.fixture(autouse=True)
def _reset_index_stats():
    INDEX_STATS.reset()
    yield
    INDEX_STATS.reset()


FORMULAS = [
    ValueFormula.true(),
    ValueFormula.eq("pen"),
    ValueFormula.eq("missing"),
    ValueFormula.eq(7),
    ValueFormula.ne("pen"),
    ValueFormula.lt(5),
    ValueFormula.ge(5),
    ValueFormula.between(2, 9),
    ValueFormula.gt(3).and_(ValueFormula.lt(3)),  # unsatisfiable
    ValueFormula.eq("ink").or_(ValueFormula.eq("pad")),
    ValueFormula.parse('v >= "i"'),
]

VALUE_COLUMNS = [
    ["pen", "ink", None, "pen", "pad", "ink", None],
    [7, 3, None, 5, 5, 11, 2, 7],
    [1.5, None, 3.0, 2, True, 0, "mixed", "atoms"],
    [],
    [None, None],
]


# --------------------------------------------------------------------------- #
# probe ≡ filter
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("values", VALUE_COLUMNS, ids=lambda v: f"n{len(v)}")
def test_probes_match_the_selection_kernel(values):
    has_values = any(value is not None for value in values)
    for threshold, expected_kind in [(64, BitmapIndex), (0, OrderedIndex)]:
        index = build_index(values, bitmap_threshold=threshold)
        if has_values or expected_kind is BitmapIndex:
            assert type(index) is expected_kind
        else:  # zero distinct values never exceed any threshold
            assert type(index) is BitmapIndex
        expected_kind = type(index)
        for formula in FORMULAS:
            assert index.probe(formula) == selection_indices(values, formula), (
                f"{expected_kind.__name__} diverged from the kernel "
                f"on {formula.to_text()!r} over {values!r}"
            )


def test_probes_unwrap_content_references():
    document = parse_parenthesized('site(item(name="pen") item(name="ink"))')
    names = [node for item in document.root.children for node in item.children]
    for threshold in (64, 0):
        index = build_index(names, bitmap_threshold=threshold)
        assert index.probe(ValueFormula.eq("ink")) == [1]


def test_non_atom_columns_are_unindexable():
    document = parse_parenthesized('site(item(name="pen"))')
    view = MaterializedView(parse_pattern("site(//name[ID,V])", name="v"), document)
    id_values = [row[0] for row in view.relation.rows]  # DeweyIDs
    assert build_index(id_values) is None


# --------------------------------------------------------------------------- #
# kind selection
# --------------------------------------------------------------------------- #
def test_kind_flips_exactly_at_the_cardinality_threshold():
    at_threshold = list(range(BITMAP_CARDINALITY_THRESHOLD)) * 2
    index = build_index(at_threshold)
    assert isinstance(index, BitmapIndex)
    assert index.cardinality == BITMAP_CARDINALITY_THRESHOLD

    over_threshold = list(range(BITMAP_CARDINALITY_THRESHOLD + 1)) * 2
    index = build_index(over_threshold)
    assert isinstance(index, OrderedIndex)
    assert index.cardinality == BITMAP_CARDINALITY_THRESHOLD + 1

    # ⊥ rows are not values: they never push a column over the threshold
    with_nulls = list(range(BITMAP_CARDINALITY_THRESHOLD)) + [None] * 10
    assert isinstance(build_index(with_nulls), BitmapIndex)


# --------------------------------------------------------------------------- #
# build-once lifecycle
# --------------------------------------------------------------------------- #
@pytest.fixture()
def database():
    document = parse_parenthesized(
        "site(" + " ".join(f'item(name="n{i % 3}")' for i in range(9)) + ")"
    )
    db = Database(document)
    db.create_view("site(/item(/name[ID,V]))", name="items")
    return db


SELECTIVE = 'site(/item(/name[ID,V]{v="n1"}))'


def test_index_builds_once_per_extent_version(database):
    first = database.query(SELECTIVE)
    assert INDEX_STATS.builds == 1 and INDEX_STATS.probes == 1
    second = database.query(SELECTIVE)
    assert INDEX_STATS.builds == 1, "a cached source must not rebuild"
    assert INDEX_STATS.probes == 2
    assert first.same_contents(second) and len(first) == 3


def test_unrelated_ddl_keeps_the_index(database):
    database.query(SELECTIVE)
    database.create_view("site(/item[ID])", name="unrelated")
    database.query(SELECTIVE)
    assert INDEX_STATS.builds == 1, (
        "DDL on another view leaves this extent (and its index) untouched"
    )


def test_rematerialising_ddl_rebuilds_the_index(database):
    baseline = database.query(SELECTIVE)
    database.drop_view("items")
    database.create_view("site(/item(/name[ID,V]))", name="items")
    result = database.query(SELECTIVE)
    assert INDEX_STATS.builds == 2, (
        "a re-materialised extent has fresh column sources: the stale "
        "index must be unreachable and a new one built"
    )
    assert result.same_contents(baseline)


def test_unindexable_columns_fall_back_to_the_scan_kernel(database):
    # probe the ID column: DeweyIDs refuse indexing, the plan must still
    # answer through the selection kernel (and never count a build)
    batch = ColumnBatch.from_relation(database.views["items"].relation)
    assert index_for_source(batch.source(batch.column_index("ID1"))) is None
    assert index_for_source(batch.source(batch.column_index("ID1"))) is None
    assert INDEX_STATS.builds == 0, "unindexable is cached, not retried"


# --------------------------------------------------------------------------- #
# publish / attach
# --------------------------------------------------------------------------- #
def test_published_indexes_attach_without_rebuilding(database):
    database.query(SELECTIVE)  # parent builds the V1 index
    assert INDEX_STATS.builds == 1
    store = ExtentStore()
    attached = None
    try:
        attached = AttachedExtents.attach(store.publish(database.views))
        batch = attached["items"].column_batch
        source = batch.source(batch.column_index("V1"))
        assert source.index_blob is not None, "publish must ship the index"
        index = index_for_source(source)
        assert INDEX_STATS.attaches == 1 and INDEX_STATS.builds == 1, (
            "the worker side must decode the published index, not rebuild"
        )
        kernel = selection_indices(
            batch.values(batch.column_index("V1")), ValueFormula.eq("n1")
        )
        assert index.probe(ValueFormula.eq("n1")) == kernel
    finally:
        if attached is not None:
            attached.close()
        store.release()


def test_unbuilt_indexes_are_not_published(database):
    # nothing probed yet: the payload carries no XIDX trailer and the
    # worker builds lazily like the parent would
    store = ExtentStore()
    attached = None
    try:
        attached = AttachedExtents.attach(store.publish(database.views))
        batch = attached["items"].column_batch
        source = batch.source(batch.column_index("V1"))
        assert source.index_blob is None
        assert index_for_source(source) is not None
        assert INDEX_STATS.builds == 1 and INDEX_STATS.attaches == 0
    finally:
        if attached is not None:
            attached.close()
        store.release()


# --------------------------------------------------------------------------- #
# codec
# --------------------------------------------------------------------------- #
def test_codec_round_trips_both_kinds_and_every_scalar_type():
    values = ["text", 7, -7, 2**80, 3.25, True, False, None, "text"]
    probes = [
        ValueFormula.true(),
        ValueFormula.eq("text"),
        ValueFormula.eq(2**80),
        ValueFormula.le(0),
        ValueFormula.eq(True),
    ]
    for threshold in (64, 0):
        index = build_index(values, bitmap_threshold=threshold)
        decoded = decode_index(encode_index(index))
        assert type(decoded) is type(index)
        assert decoded.row_count == index.row_count
        for formula in probes:
            assert decoded.probe(formula) == index.probe(formula)


def test_section_codec_round_trips_column_positions():
    ordered = build_index(list(range(100)), bitmap_threshold=4)
    bitmap = build_index(["a", "b", "a"])
    blobs = decode_index_section(encode_index_section({2: ordered, 0: bitmap}))
    assert sorted(blobs) == [0, 2]
    assert isinstance(decode_index(blobs[0]), BitmapIndex)
    assert isinstance(decode_index(blobs[2]), OrderedIndex)


def test_codec_rejects_corrupt_payloads():
    with pytest.raises(ExtentStoreError, match="bad magic"):
        decode_index(b"not an index")
    with pytest.raises(ExtentStoreError, match="bad magic"):
        decode_index_section(b"not a section")
