"""Unit tests for the workload generators and the experiment harnesses."""

import random

from repro import build_summary
from repro.canonical import is_satisfiable
from repro.experiments.fig13 import run_fig13_query_containment, run_fig13_synthetic_containment
from repro.experiments.fig15 import fig15_views, run_fig15
from repro.experiments.table1 import TABLE1_DOCUMENTS, print_table1, run_table1
from repro.workloads.corpora import (
    generate_nasa_document,
    generate_shakespeare_document,
    generate_swissprot_document,
)
from repro.workloads.dblp import generate_dblp_document
from repro.workloads.synthetic import (
    SyntheticPatternConfig,
    generate_random_pattern,
    generate_random_views,
    seed_tag_views,
)
from repro.workloads.xmark import generate_xmark_document, xmark_query_patterns


class TestGenerators:
    def test_xmark_document_structure(self):
        document = generate_xmark_document(scale=1.0, seed=42)
        summary = build_summary(document)
        assert summary.has_path("/site/regions")
        assert any("item" in node.path for node in summary.iter_nodes())
        assert any("listitem" in node.path for node in summary.iter_nodes())
        assert summary.size < document.size

    def test_xmark_scaling_grows_document_not_summary(self):
        small = build_summary(generate_xmark_document(scale=1.0, seed=1))
        large_doc = generate_xmark_document(scale=3.0, seed=1)
        large = build_summary(large_doc)
        assert large_doc.size > 0
        # the summary grows much more slowly than the document (Table 1 claim)
        assert large.size <= small.size * 2

    def test_xmark_reproducibility(self):
        first = generate_xmark_document(scale=1.0, seed=9)
        second = generate_xmark_document(scale=1.0, seed=9)
        assert first.size == second.size

    def test_dblp_snapshots_differ(self):
        from repro.workloads.dblp import dblp_spec

        old_spec, new_spec = dblp_spec("2002"), dblp_spec("2005")
        # the 2005 snapshot adds record fields, so its spec is strictly richer
        assert len(new_spec.children["article"]) > len(old_spec.children["article"])
        old = build_summary(generate_dblp_document("2002", seed=4))
        new = build_summary(generate_dblp_document("2005", seed=4))
        assert old.size > 10 and new.size > 10
        assert old.root.label == new.root.label == "dblp"

    def test_other_corpora_generate(self):
        for generator, root in [
            (generate_shakespeare_document, "PLAY"),
            (generate_nasa_document, "datasets"),
            (generate_swissprot_document, "root"),
        ]:
            document = generator(seed=2)
            assert document.root.label == root
            assert build_summary(document).size > 5

    def test_xmark_query_patterns_are_satisfiable(self):
        summary = build_summary(generate_xmark_document(scale=2.0, seed=548))
        patterns = xmark_query_patterns()
        assert len(patterns) == 20
        for name, pattern in patterns.items():
            assert is_satisfiable(pattern, summary), f"{name} is unsatisfiable"


class TestSyntheticPatterns:
    def test_random_patterns_are_satisfiable(self):
        summary = build_summary(generate_xmark_document(scale=1.0, seed=3))
        rng = random.Random(1)
        for size in (3, 6, 9):
            config = SyntheticPatternConfig(size=size, return_count=2)
            pattern = generate_random_pattern(summary, config, rng=rng)
            assert pattern.size <= size + 1
            assert pattern.arity >= 1
            assert is_satisfiable(pattern, summary)

    def test_seed_views_cover_every_tag(self):
        summary = build_summary(generate_xmark_document(scale=1.0, seed=3))
        views = seed_tag_views(summary)
        labels = {view.nodes()[1].label for view in views}
        summary_labels = {n.label for n in summary.iter_nodes() if n.parent is not None}
        assert labels == summary_labels
        assert all(view.return_nodes()[0].attributes == ("ID", "V") for view in views)

    def test_random_views_have_stored_nodes(self):
        summary = build_summary(generate_xmark_document(scale=1.0, seed=3))
        views = generate_random_views(summary, count=10, seed=5)
        assert len(views) == 10
        assert all(view.return_nodes() for view in views)


class TestExperimentHarnesses:
    def test_table1_rows(self):
        rows = run_table1(scale=0.5)
        assert len(rows) == len(TABLE1_DOCUMENTS)
        for row in rows:
            assert row.summary_size <= row.document_size
            assert row.strong_edges >= row.one_to_one_edges
        text = print_table1(rows)
        assert "XMark111" in text

    def test_fig13_query_rows(self):
        summary = build_summary(generate_xmark_document(scale=1.0, seed=548))
        rows = run_fig13_query_containment(summary)
        assert len(rows) == 20
        assert all(row.contained for row in rows)
        assert all(row.canonical_model_size >= 1 for row in rows)
        # Q7 has by far the largest canonical model (the paper's outlier)
        largest = max(rows, key=lambda row: row.canonical_model_size)
        assert largest.query == "Q7"

    def test_fig13_synthetic_rows(self):
        summary = build_summary(generate_xmark_document(scale=1.0, seed=548))
        rows = run_fig13_synthetic_containment(
            summary, sizes=(3, 5), return_counts=(1,), patterns_per_size=3
        )
        assert len(rows) == 2
        for row in rows:
            assert row.positive_tests >= 1  # self-containment pairs always positive

    def test_fig15_rows(self):
        summary = build_summary(generate_xmark_document(scale=1.0, seed=548))
        views = fig15_views(summary, random_view_count=5)
        assert len(views) > 20
        rows = run_fig15(
            summary=summary,
            random_view_count=5,
            time_budget_seconds=2.0,
            max_rewritings=1,
            query_names=["Q6", "Q18"],
        )
        assert [row.query for row in rows] == ["Q6", "Q18"]
        for row in rows:
            assert row.total_seconds >= row.setup_seconds
            assert 0.0 <= row.views_kept_ratio <= 1.0
        assert any(row.rewritings_found > 0 for row in rows)
