"""Unit tests for the XML substrate: nodes, documents, parsing, serialisation."""

import pytest

from repro import (
    XMLDocument,
    XMLNode,
    element,
    parse_parenthesized,
    parse_xml_string,
    to_parenthesized,
    to_xml_string,
    tree,
)
from repro.errors import XMLError, XMLParseError
from repro.xmltree.generator import (
    ChildSpec,
    RandomDocumentSpec,
    generate_random_document,
    generate_uniform_tree,
)


class TestXMLNode:
    def test_labels_must_be_non_empty(self):
        with pytest.raises(XMLError):
            XMLNode("")

    def test_append_sets_parent(self):
        parent = XMLNode("a")
        child = parent.append_new("b", value=3)
        assert child.parent is parent
        assert parent.children == [child]

    def test_cannot_append_attached_node(self):
        parent = XMLNode("a")
        child = parent.append_new("b")
        with pytest.raises(XMLError):
            XMLNode("c").append(child)

    def test_descendants_in_document_order(self):
        doc = parse_parenthesized("a(b(c) d(e f))")
        labels = [n.label for n in doc.root.iter_descendants()]
        assert labels == ["b", "c", "d", "e", "f"]

    def test_subtree_contains_self(self):
        doc = parse_parenthesized("a(b)")
        assert [n.label for n in doc.root.iter_subtree()] == ["a", "b"]

    def test_ancestors_nearest_first(self):
        doc = parse_parenthesized("a(b(c(d)))")
        d = doc.root.children[0].children[0].children[0]
        assert [n.label for n in d.iter_ancestors()] == ["c", "b", "a"]

    def test_children_and_descendants_with_label(self):
        doc = parse_parenthesized("a(b b(c(b)) d)")
        assert len(doc.root.children_with_label("b")) == 2
        assert len(doc.root.descendants_with_label("b")) == 3
        assert len(doc.root.children_with_label("*")) == 3

    def test_rooted_path(self):
        doc = parse_parenthesized("a(b(c))")
        c = doc.root.children[0].children[0]
        assert c.rooted_path() == "/a/b/c"
        assert c.path == "/a/b/c"

    def test_text_content_concatenates_values(self):
        doc = parse_parenthesized('a(b="x" c(d="y"))')
        assert doc.root.text_content() == "x y"

    def test_copy_is_deep_and_detached(self):
        doc = parse_parenthesized('a(b="1"(c))')
        clone = doc.root.copy()
        assert clone.parent is None
        assert clone.children[0].label == "b"
        assert clone.children[0] is not doc.root.children[0]

    def test_detach(self):
        doc = parse_parenthesized("a(b c)")
        b = doc.root.children[0]
        b.detach()
        assert b.parent is None
        assert [c.label for c in doc.root.children] == ["c"]

    def test_depth_and_subtree_size(self):
        doc = parse_parenthesized("a(b(c) d)")
        assert doc.root.depth == 1
        assert doc.root.children[0].children[0].depth == 3
        assert doc.root.subtree_size() == 4


class TestXMLDocument:
    def test_ids_assigned_in_document_order(self):
        doc = parse_parenthesized("a(b(c) d)")
        ids = [str(n.dewey) for n in doc.iter_nodes()]
        assert ids == ["1", "1.1", "1.1.1", "1.2"]

    def test_node_lookup_by_id(self):
        doc = parse_parenthesized("a(b c)")
        node = doc.node_by_id(doc.root.children[1].dewey)
        assert node.label == "c"

    def test_unknown_id_raises(self):
        doc = parse_parenthesized("a(b)")
        from repro import DeweyID

        with pytest.raises(XMLError):
            doc.node_by_id(DeweyID((1, 9)))

    def test_nodes_on_path(self):
        doc = parse_parenthesized("a(b(c) b(c c))")
        assert len(doc.nodes_on_path("/a/b/c")) == 3

    def test_root_cannot_have_parent(self):
        parent = XMLNode("a")
        child = parent.append_new("b")
        with pytest.raises(XMLError):
            XMLDocument(child)

    def test_reindex_after_mutation(self):
        doc = parse_parenthesized("a(b)")
        doc.root.append_new("c")
        doc.reindex()
        assert doc.size == 3
        assert doc.root.children[1].path == "/a/c"


class TestBuildersAndParsers:
    def test_element_builder(self):
        doc = tree(element("a", element("b", value=1), element("c")))
        assert doc.size == 3
        assert doc.root.children[0].value == 1

    def test_parenthesized_values(self):
        doc = parse_parenthesized('a(b="text value" c=42 d=3.5)')
        values = [c.value for c in doc.root.children]
        assert values == ["text value", 42, 3.5]

    def test_parenthesized_rejects_garbage(self):
        with pytest.raises(XMLParseError):
            parse_parenthesized("a(b))")
        with pytest.raises(XMLParseError):
            parse_parenthesized("a(b")

    def test_xml_string_round_trip(self):
        doc = parse_xml_string("<a><b x='1'>hello</b><c>2</c></a>")
        assert doc.root.label == "a"
        b = doc.root.children[0]
        assert b.value == "hello"
        assert b.children[0].label == "@x"
        assert doc.root.children[1].value == 2
        # serialising and re-parsing preserves structure
        again = parse_xml_string(to_xml_string(doc))
        assert to_parenthesized(again) == to_parenthesized(doc)

    def test_xml_parse_error(self):
        with pytest.raises(XMLParseError):
            parse_xml_string("<a><b></a>")

    def test_to_parenthesized(self):
        doc = parse_parenthesized('a(b="1" c(d))')
        assert to_parenthesized(doc) == 'a(b="1" c(d))'


class TestGenerators:
    def test_spec_generator_is_reproducible(self):
        spec = RandomDocumentSpec(
            root="r",
            children={"r": [ChildSpec("a", 1, 3)], "a": [ChildSpec("b", 0, 2)]},
            values={"b": [1, 2, 3]},
        )
        one = generate_random_document(spec, seed=5)
        two = generate_random_document(spec, seed=5)
        assert to_parenthesized(one) == to_parenthesized(two)

    def test_spec_generator_respects_max_depth(self):
        spec = RandomDocumentSpec(
            root="r",
            children={"r": [ChildSpec("r", 1, 1)]},
            values={},
            max_depth=3,
            max_recursion=10,
        )
        doc = generate_random_document(spec, seed=1)
        assert max(node.depth for node in doc.iter_nodes()) <= 3

    def test_spec_generator_respects_recursion_limit(self):
        spec = RandomDocumentSpec(
            root="r",
            children={"r": [ChildSpec("x", 1, 1)], "x": [ChildSpec("x", 1, 1)]},
            values={},
            max_depth=20,
            max_recursion=2,
        )
        doc = generate_random_document(spec, seed=1)
        # the recursive label appears at most twice on any root-to-leaf path
        deepest = max(doc.iter_nodes(), key=lambda n: n.depth)
        labels_on_path = [deepest.label] + [a.label for a in deepest.iter_ancestors()]
        assert labels_on_path.count("x") <= 2

    def test_uniform_tree_root_label_is_first(self):
        doc = generate_uniform_tree(["a", "b", "c"], seed=2)
        assert doc.root.label == "a"

    def test_unknown_root_label_raises(self):
        from repro.errors import WorkloadError

        spec = RandomDocumentSpec(root="missing", children={}, values={})
        with pytest.raises(WorkloadError):
            generate_random_document(spec)
