"""The docs tree is part of the contract: links resolve, coverage holds.

Two invariants, both cheap enough for tier-1:

* every relative markdown link in ``README.md`` and ``docs/*.md`` points
  at a file that exists (same check the CI ``docs`` job runs via
  ``tools/check_doc_links.py``);
* every module named in the README architecture diagram has a
  corresponding section in ``docs/architecture.md`` — the walkthrough may
  not silently fall behind the code layout.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent

sys.path.insert(0, str(ROOT / "tools"))
from check_doc_links import broken_links, doc_files  # noqa: E402

# the packages the README architecture diagram names (plus the substrate
# and harness packages it references in prose)
DIAGRAM_MODULES = [
    "session",
    "ingest",
    "xmltree",
    "patterns",
    "summary",
    "views",
    "containment",
    "canonical",
    "rewriting",
    "planning",
    "algebra",
    "workloads",
    "experiments",
    "service",
]

EXPECTED_DOCS = [
    "index.md",
    "api.md",
    "architecture.md",
    "cost-model.md",
    "containment.md",
    "benchmarks.md",
    "execution.md",
    "indexes.md",
    "ingestion.md",
    "service.md",
]


def test_docs_tree_is_complete():
    names = {path.name for path in doc_files(ROOT)}
    assert "README.md" in names
    for expected in EXPECTED_DOCS:
        assert expected in names, f"docs/{expected} is missing"


def test_all_relative_links_resolve():
    offenders = broken_links(ROOT)
    assert not offenders, f"broken doc links: {offenders}"


def test_architecture_doc_covers_every_diagram_module():
    text = (ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    headings = [line for line in text.splitlines() if line.startswith("#")]
    for module in DIAGRAM_MODULES:
        assert any(module in heading for heading in headings), (
            f"docs/architecture.md has no section heading covering {module!r}"
        )
    for package in sorted(
        p.name for p in (ROOT / "src" / "repro").iterdir() if p.is_dir()
    ):
        if package.startswith("__"):
            continue
        assert package in DIAGRAM_MODULES, (
            f"package {package!r} exists but is not in the documented module "
            f"list — extend DIAGRAM_MODULES and docs/architecture.md"
        )


def test_readme_links_into_the_docs_tree():
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    for target in ["docs/api.md", "docs/architecture.md", "docs/cost-model.md",
                   "docs/containment.md", "docs/benchmarks.md",
                   "docs/execution.md", "docs/indexes.md",
                   "docs/ingestion.md", "docs/service.md"]:
        assert target in readme, f"README does not link {target}"
