"""Unit tests for value-predicate formulas (Section 4.2)."""

import pytest

from repro import ValueFormula
from repro.errors import PredicateError


class TestConstructionAndEvaluation:
    def test_true_and_false(self):
        assert ValueFormula.true().evaluate(42)
        assert ValueFormula.true().evaluate("anything")
        assert not ValueFormula.false().evaluate(42)
        assert ValueFormula.true().is_true()
        assert not ValueFormula.false().is_satisfiable()

    def test_equality_atom(self):
        formula = ValueFormula.eq(3)
        assert formula.evaluate(3)
        assert not formula.evaluate(4)

    def test_string_equality(self):
        formula = ValueFormula.eq("pen")
        assert formula.evaluate("pen")
        assert not formula.evaluate("ink")

    def test_comparisons(self):
        assert ValueFormula.lt(5).evaluate(4)
        assert not ValueFormula.lt(5).evaluate(5)
        assert ValueFormula.le(5).evaluate(5)
        assert ValueFormula.gt(5).evaluate(6)
        assert not ValueFormula.gt(5).evaluate(5)
        assert ValueFormula.ge(5).evaluate(5)

    def test_not_equal(self):
        formula = ValueFormula.ne(3)
        assert formula.evaluate(2) and formula.evaluate(4)
        assert not formula.evaluate(3)

    def test_between(self):
        formula = ValueFormula.between(2, 5)
        assert formula.evaluate(2) and formula.evaluate(5)
        assert not ValueFormula.between(2, 5, closed=False).evaluate(2)

    def test_none_satisfies_only_true(self):
        assert ValueFormula.true().evaluate(None)
        assert not ValueFormula.eq(3).evaluate(None)


class TestConnectives:
    def test_conjunction(self):
        formula = ValueFormula.gt(2).and_(ValueFormula.lt(5))
        assert formula.evaluate(3)
        assert not formula.evaluate(5)
        assert not formula.evaluate(1)

    def test_contradictory_conjunction_is_unsatisfiable(self):
        assert not ValueFormula.lt(2).and_(ValueFormula.gt(5)).is_satisfiable()
        assert not ValueFormula.eq(1).and_(ValueFormula.eq(2)).is_satisfiable()

    def test_disjunction(self):
        formula = ValueFormula.eq(1).or_(ValueFormula.eq(3))
        assert formula.evaluate(1) and formula.evaluate(3)
        assert not formula.evaluate(2)

    def test_disjunction_merges_overlaps(self):
        formula = ValueFormula.lt(5).or_(ValueFormula.lt(10))
        assert formula.equivalent(ValueFormula.lt(10))

    def test_negation(self):
        formula = ValueFormula.eq(3).negate()
        assert formula.evaluate(2) and formula.evaluate(4)
        assert not formula.evaluate(3)

    def test_double_negation(self):
        formula = ValueFormula.gt(2).and_(ValueFormula.lt(5))
        assert formula.negate().negate().equivalent(formula)

    def test_negation_of_true_is_false(self):
        assert not ValueFormula.true().negate().is_satisfiable()
        assert ValueFormula.false().negate().is_true()


class TestImplication:
    def test_equality_implies_range(self):
        assert ValueFormula.eq(3).implies(ValueFormula.gt(1))
        assert not ValueFormula.gt(1).implies(ValueFormula.eq(3))

    def test_tighter_range_implies_looser(self):
        tight = ValueFormula.gt(2).and_(ValueFormula.lt(4))
        loose = ValueFormula.gt(0).and_(ValueFormula.lt(10))
        assert tight.implies(loose)
        assert not loose.implies(tight)

    def test_everything_implies_true(self):
        assert ValueFormula.eq("x").implies(ValueFormula.true())
        assert ValueFormula.false().implies(ValueFormula.eq(1))

    def test_equivalence(self):
        left = ValueFormula.ge(2).and_(ValueFormula.le(2))
        assert left.equivalent(ValueFormula.eq(2))

    def test_paper_section42_example(self):
        # phi_t'phi2 = (v=3)  implies  phi_tphi3 = (v>1)
        assert ValueFormula.eq(3).implies(ValueFormula.gt(1))
        # (v=3) implies (v=3 and v<5) or (v<5 and v>2)
        left = ValueFormula.eq(3)
        right = (ValueFormula.eq(3).and_(ValueFormula.lt(5))).or_(
            ValueFormula.lt(5).and_(ValueFormula.gt(2))
        )
        assert left.implies(right)


class TestParsingAndRendering:
    def test_parse_simple(self):
        formula = ValueFormula.parse("v > 2 and v < 5")
        assert formula.evaluate(3) and not formula.evaluate(6)

    def test_parse_or(self):
        formula = ValueFormula.parse("v = 1 or v = 4")
        assert formula.evaluate(4) and not formula.evaluate(2)

    def test_parse_string_constant(self):
        formula = ValueFormula.parse("v = 'pen'")
        assert formula.evaluate("pen")

    def test_parse_parentheses(self):
        formula = ValueFormula.parse("(v < 2 or v > 8) and v != 9")
        assert formula.evaluate(1) and formula.evaluate(10)
        assert not formula.evaluate(9) and not formula.evaluate(5)

    def test_parse_true_false(self):
        assert ValueFormula.parse("true").is_true()
        assert not ValueFormula.parse("false").is_satisfiable()

    def test_parse_errors(self):
        with pytest.raises(PredicateError):
            ValueFormula.parse("v >")
        with pytest.raises(PredicateError):
            ValueFormula.parse("x = 3")

    def test_to_text_round_trip(self):
        for text in ["v>2 and v<5", "v=3", "v='pen'", "v>=1 or v<=-4", "true"]:
            formula = ValueFormula.parse(text)
            assert ValueFormula.parse(formula.to_text()).equivalent(formula)

    def test_repr_and_hash(self):
        formula = ValueFormula.eq(3)
        assert "v=3" in repr(formula)
        assert hash(ValueFormula.eq(3)) == hash(ValueFormula.eq(3))

    def test_mixed_type_ordering_is_total(self):
        # numbers sort below strings, so this mixed formula is satisfiable and
        # behaves consistently
        formula = ValueFormula.gt(5).and_(ValueFormula.lt("m"))
        assert formula.evaluate(7)
        assert formula.evaluate("a")
        assert not formula.evaluate("z")
