"""Edge cases of the columnar batch layer (:mod:`repro.algebra.columnar`).

The vectorized executor trusts :class:`ColumnBatch` and the payload codec
with the degenerate shapes real plans produce constantly — empty extents,
all-⊥ optional columns, duplicate Dewey identifiers straddling the
result-stream window boundary, single-row batches — so each gets a direct
test here, alongside the two lazy-decode observables (``bytes_touched``
growth and the released-payload error).
"""

from __future__ import annotations

import pytest

from repro.algebra.columnar import (
    ColumnBatch,
    ColumnarPayload,
    concat_batches,
    decode_columnar,
    decode_payload,
    encode_columnar,
)
from repro.algebra.tuples import Column, Relation
from repro.errors import ExtentStoreError
from repro.xmltree.ids import DeweyID


def _relation(rows, columns=("ID", "V"), sorted_by=None):
    relation = Relation([Column(name) for name in columns], rows=list(rows))
    if sorted_by:
        relation.mark_sorted_by(sorted_by)
    return relation


class TestEmptyColumns:
    def test_empty_relation_round_trips_through_batch(self):
        relation = _relation([], sorted_by="ID")
        batch = ColumnBatch.from_relation(relation)
        assert batch.row_count == 0
        assert batch.values(0) == [] and batch.values(1) == []
        back = batch.to_relation()
        assert back.rows == [] and [c.name for c in back.columns] == ["ID", "V"]

    def test_empty_relation_round_trips_through_codec(self):
        relation = _relation([], sorted_by="ID")
        payload = encode_columnar(relation)
        decoded = decode_columnar(payload)
        assert decoded.row_count == 0
        assert decoded.sorted_by == "ID"
        assert [c.name for c in decoded.columns] == ["ID", "V"]
        assert decoded.to_relation().rows == []

    def test_empty_batch_slices_and_gathers(self):
        batch = ColumnBatch.from_relation(_relation([], sorted_by="ID"))
        window = batch.slice(0, 1024)
        assert window.row_count == 0 and window.sorted_by == "ID"
        assert window.to_relation().rows == []


class TestAllNullColumns:
    def test_all_null_column_round_trips(self):
        rows = [(DeweyID((1, i)), None) for i in range(1, 5)]
        relation = _relation(rows, sorted_by="ID")
        decoded = decode_payload(encode_columnar(relation))
        assert decoded.rows == rows
        assert decoded.sorted_by == "ID"

    def test_all_null_dewey_keys_are_none(self):
        rows = [(None,), (None,), (None,)]
        batch = ColumnBatch.from_relation(_relation(rows, columns=("ID",)))
        assert batch.dewey_keys(0) == [None, None, None]

    def test_all_null_column_survives_slicing(self):
        rows = [(DeweyID((1, i)), None) for i in range(1, 7)]
        batch = ColumnBatch.from_relation(_relation(rows, sorted_by="ID"))
        window = batch.slice(2, 5)
        assert window.values(1) == [None, None, None]
        assert window.values(0) == [DeweyID((1, 3)), DeweyID((1, 4)), DeweyID((1, 5))]


class TestDuplicateIdsAcrossBatchBoundaries:
    def test_duplicates_straddling_window_boundary_reassemble_identically(self):
        # the same Dewey ID on both sides of the stream-window cut: the
        # reassembled stream must preserve every duplicate, in order
        dup = DeweyID((1, 2))
        rows = [(DeweyID((1, 1)), "a"), (dup, "b"), (dup, "c"), (DeweyID((1, 3)), "d")]
        batch = ColumnBatch.from_relation(_relation(rows, sorted_by="ID"))
        windows = [batch.slice(0, 2), batch.slice(2, 4)]  # cut between the dups
        merged = concat_batches(windows)
        assert merged.row_count == 4
        assert merged.to_relation().rows == rows
        assert merged.sorted_by == "ID"

    def test_duplicates_survive_the_stream_codec(self):
        dup = DeweyID((1, 2))
        rows = [(dup, "b"), (dup, "c")]
        batch = ColumnBatch.from_relation(_relation(rows, sorted_by="ID"))
        windows = [batch.slice(0, 1), batch.slice(1, 2)]
        decoded = concat_batches(
            [decode_columnar(encode_columnar(window)) for window in windows]
        )
        assert decoded.to_relation().rows == rows

    def test_mixed_sort_annotations_drop_sorted_by(self):
        rows = [(DeweyID((1, 1)), "a"), (DeweyID((1, 2)), "b")]
        sorted_batch = ColumnBatch.from_relation(_relation(rows, sorted_by="ID"))
        unsorted_batch = ColumnBatch.from_relation(_relation(rows))
        merged = concat_batches([sorted_batch, unsorted_batch])
        assert merged.sorted_by is None

    def test_concat_of_nothing_is_an_error(self):
        with pytest.raises(ExtentStoreError):
            concat_batches([])


class TestSingleRowBatches:
    def test_single_row_batch_round_trips(self):
        rows = [(DeweyID((1, 1)), "only")]
        relation = _relation(rows, sorted_by="ID")
        batch = ColumnBatch.from_relation(relation)
        assert batch.row_count == 1
        decoded = decode_payload(encode_columnar(batch))
        assert decoded.rows == rows and decoded.sorted_by == "ID"

    def test_single_row_windows_reassemble(self):
        rows = [(DeweyID((1, i)), f"v{i}") for i in range(1, 4)]
        batch = ColumnBatch.from_relation(_relation(rows, sorted_by="ID"))
        windows = [batch.slice(i, i + 1) for i in range(3)]
        assert all(window.row_count == 1 for window in windows)
        merged = concat_batches(windows)
        assert merged.to_relation().rows == rows
        assert merged.sorted_by == "ID"


class TestSortedByThroughSlicing:
    def test_sorted_by_survives_slice(self):
        rows = [(DeweyID((1, i)), f"v{i}") for i in range(1, 6)]
        batch = ColumnBatch.from_relation(_relation(rows, sorted_by="ID"))
        window = batch.slice(1, 4)
        assert window.sorted_by == "ID"
        assert window.to_relation().sorted_by == "ID"

    def test_gather_does_not_claim_order_by_default(self):
        # an arbitrary index vector may reorder rows — gather must not
        # inherit the annotation unless the caller proves it holds
        rows = [(DeweyID((1, i)), f"v{i}") for i in range(1, 4)]
        batch = ColumnBatch.from_relation(_relation(rows, sorted_by="ID"))
        assert batch.gather([2, 0, 1]).sorted_by is None


class TestLazyPayloadDecode:
    def test_bytes_touched_grows_per_column(self):
        rows = [(DeweyID((1, i)), "x" * 50) for i in range(1, 20)]
        payload = ColumnarPayload(encode_columnar(_relation(rows, sorted_by="ID")))
        header_only = payload.bytes_touched
        assert 0 < header_only < len(encode_columnar(_relation(rows, sorted_by="ID")))
        payload.column_values(0)
        after_ids = payload.bytes_touched
        assert after_ids > header_only
        payload.column_values(0)  # cached: no second charge
        assert payload.bytes_touched == after_ids
        payload.column_values(1)
        assert payload.bytes_touched > after_ids

    def test_released_payload_refuses_undecoded_columns(self):
        rows = [(DeweyID((1, 1)), "pen")]
        payload = ColumnarPayload(encode_columnar(_relation(rows)))
        payload.column_values(0)
        payload.release()
        assert payload.column_values(0) == [DeweyID((1, 1))]  # cache survives
        with pytest.raises(ExtentStoreError, match="released"):
            payload.column_values(1)

    def test_bad_magic_is_rejected(self):
        with pytest.raises(ExtentStoreError, match="bad magic"):
            ColumnarPayload(b"NOPE" + b"\x00" * 16)
