"""Unit tests for the ``Database`` session façade.

Lifecycle (construction, save/load, close), view DDL with *incremental*
catalog maintenance (the entry-build counter is the observable contract),
prepared queries (plan-once semantics, DDL-driven re-planning) and the
query sugar, all over the small auction fixture document.
"""

from __future__ import annotations

import pytest

from repro import Database, evaluate_pattern, parse_pattern
from repro.errors import ReproError, RewritingError, SessionError
from repro.views.catalog import ViewCatalog

ITEM_NAMES = "site(//item[ID](/name[V]))"


@pytest.fixture()
def db(auction_document):
    database = Database(auction_document)
    database.create_view(ITEM_NAMES, name="item_names")
    yield database
    database.close()


# --------------------------------------------------------------------------- #
# lifecycle
# --------------------------------------------------------------------------- #
def test_database_needs_document_or_summary():
    with pytest.raises(SessionError):
        Database()


def test_database_builds_summary_and_owns_views(db, auction_summary):
    assert db.summary.size == auction_summary.size
    assert db.views.names == ["item_names"]
    assert db.document is not None


def test_from_summary_session_rewrites_without_a_document(auction_summary):
    database = Database.from_summary(auction_summary)
    database.create_view(ITEM_NAMES, name="v", materialize=False)
    outcome = database.rewrite(parse_pattern(ITEM_NAMES, name="q"))
    assert outcome.found


def test_context_manager_closes(auction_document):
    with Database(auction_document) as database:
        database.create_view(ITEM_NAMES, name="v")
        assert len(database.query(ITEM_NAMES)) == 3
    database.close()  # idempotent after __exit__


def test_save_load_roundtrip(db, auction_document, tmp_path):
    path = tmp_path / "auction.db"
    db.save(path)
    loaded = Database.load(path)
    assert loaded.views.names == db.views.names
    # extents ship with the database snapshot: the loaded session executes
    assert loaded.query(ITEM_NAMES).same_contents(db.query(ITEM_NAMES))
    # the persisted catalog is adopted, not rebuilt
    assert loaded.catalog.entry_build_count == db.catalog.entry_build_count


def test_load_accepts_bare_catalog_snapshots(db, tmp_path):
    path = tmp_path / "catalog.pkl"
    db.catalog.save(path, include_extents=True)
    loaded = Database.load(path)
    assert loaded.document is None
    assert loaded.views.names == db.views.names
    assert len(loaded.query(ITEM_NAMES)) == 3


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "junk.db"
    path.write_bytes(b"not a pickle")
    with pytest.raises(SessionError):
        Database.load(path)


def test_catalog_snapshots_without_build_counter_still_load(db):
    """Pre-1.4 catalog snapshots lack entry_build_count; loading backfills it."""
    import pickle

    catalog = db.catalog
    saved = catalog.__dict__.pop("entry_build_count")
    try:
        payload = pickle.dumps(catalog)
    finally:
        catalog.entry_build_count = saved
    restored = pickle.loads(payload)
    assert restored.entry_build_count == len(restored._entries)
    # and the incremental DDL path works on the restored catalog
    from repro import MaterializedView, parse_pattern

    restored.add_view(
        MaterializedView(parse_pattern("site(//keyword[ID])", name="kw"), name="kw")
    )
    assert restored.entry_build_count == len(restored._entries)


# --------------------------------------------------------------------------- #
# view DDL + incremental catalog maintenance
# --------------------------------------------------------------------------- #
def test_create_view_parses_text_and_materialises(db):
    view = db.create_view("site(//keyword[ID,V])", name="keywords")
    assert view.is_materialized
    assert "keywords" in db.views


def test_create_view_rejects_duplicate_names(db):
    with pytest.raises(ReproError):
        db.create_view(ITEM_NAMES, name="item_names")


def test_drop_view_unknown_raises(db):
    with pytest.raises(KeyError):
        db.drop_view("nope")


def test_ddl_patches_catalog_instead_of_rebuilding(auction_document):
    """One create + one drop among 50 views must build exactly one entry."""
    database = Database(auction_document)
    for index in range(50):
        database.create_view(
            "site(//item[ID](/name[V]))" if index % 2 else "site(//keyword[ID,V])",
            name=f"v{index}",
        )
    catalog = database.catalog  # force the build
    builds_after_full_build = catalog.entry_build_count
    assert builds_after_full_build >= 50

    database.drop_view("v7")
    extra = database.create_view("site(//listitem[ID])", name="extra")
    assert database.catalog is catalog, "DDL must not replace the catalog object"
    assert catalog.entry_build_count == builds_after_full_build + 1, (
        "dropping + creating 1 view among 50 must build exactly one new "
        "entry — the other 49 are patched around, not rebuilt"
    )
    assert len(catalog) == 50
    # and the patched catalog is consistent: the new view is queryable
    assert extra.name in {view.name for view in catalog.views}
    assert "v7" not in {view.name for view in catalog.views}
    database.close()


def test_patched_catalog_matches_fresh_rebuild(db, auction_summary):
    db.create_view("site(//keyword[ID,V])", name="kw")
    db.create_view("site(//listitem[ID])", name="li")
    db.drop_view("kw")
    patched = db.catalog
    fresh = ViewCatalog(auction_summary, list(db.views))
    assert patched._by_name == fresh._by_name
    assert patched._by_root_label == fresh._by_root_label
    assert patched._by_related_path == fresh._by_related_path
    assert patched._by_path_attribute == fresh._by_path_attribute


def test_statistics_follow_incremental_ddl(db):
    db.catalog.statistics()  # build the snapshot before the DDL
    view = db.create_view("site(//keyword[ID,V])", name="kw")
    assert db.catalog.statistics().view_rows("kw") == float(len(view.relation))
    db.drop_view("kw")
    assert db.catalog.statistics().view_rows("kw") == 1.0  # unknown floor


# --------------------------------------------------------------------------- #
# prepared queries + sugar
# --------------------------------------------------------------------------- #
def test_query_matches_direct_evaluation(db, auction_document):
    answer = db.query(ITEM_NAMES, name="q")
    direct = evaluate_pattern(parse_pattern(ITEM_NAMES, name="q"), auction_document)
    assert answer.same_contents(direct)


def test_prepare_plans_once_and_runs_many(db):
    prepared = db.prepare(ITEM_NAMES, name="q")
    first = prepared.run()
    second = prepared.run()
    assert prepared.times_planned == 1
    assert first.same_contents(second)
    assert len(first) == 3


def test_prepare_raises_without_rewriting(db):
    with pytest.raises(RewritingError):
        db.prepare("site(//mailbox[ID])", name="q")


def test_prepared_query_replans_after_ddl(db):
    prepared = db.prepare(ITEM_NAMES, name="q")
    before = prepared.run()
    db.create_view("site(//keyword[ID,V])", name="kw")
    after = prepared.run()
    assert prepared.times_planned == 2, "view DDL must force a re-plan"
    assert before.same_contents(after)


def test_prepared_query_fails_cleanly_when_views_vanish(db):
    prepared = db.prepare(ITEM_NAMES, name="q")
    db.drop_view("item_names")
    with pytest.raises(RewritingError):
        prepared.run()


def test_query_many_matches_single_queries(db):
    queries = [ITEM_NAMES, "site(//item[ID])"]
    batched = db.query_many(queries)
    singles = [db.query(query) for query in queries]
    assert len(batched) == len(singles)
    for left, right in zip(batched, singles):
        assert left.same_contents(right)


def test_query_many_raises_on_unanswerable_query(db):
    with pytest.raises(RewritingError):
        db.query_many([ITEM_NAMES, "site(//mailbox[ID])"])


# --------------------------------------------------------------------------- #
# the aggregated observability snapshot
# --------------------------------------------------------------------------- #
def test_stats_aggregates_every_layer(db):
    snapshot = db.stats()
    assert snapshot["document"] == "auction"
    assert snapshot["summary"]["size"] > 0
    assert snapshot["views"] == {"count": 1, "version": 1, "materialized": 1}
    assert snapshot["executor"] == "vectorized"
    assert snapshot["maintenance_mode"] == "incremental"
    assert snapshot["plan_cache"]["hits"] == 0
    assert snapshot["extent_store"] == {"published": False, "publish_count": 0}
    assert set(snapshot["maintenance"]) == {
        "delta_applied", "rematerialized",
        "summary_incremental", "summary_rebuilt",
    }
    assert snapshot["worker_pool"] == {"active": False, "workers": 0}
    assert {"builds", "attaches", "probes"} <= set(snapshot["indexes"])


def test_stats_tracks_queries_and_ddl(db):
    db.query(ITEM_NAMES)
    db.query(ITEM_NAMES)  # second one hits the plan cache
    db.create_view("site(//keyword[ID,V])", name="kw")
    snapshot = db.stats()
    assert snapshot["plan_cache"]["hits"] == 1
    assert snapshot["plan_cache"]["misses"] == 1
    assert snapshot["views"]["count"] == 2
    assert snapshot["views"]["version"] == 2


def test_stats_is_a_pure_read(db):
    before = db.stats()
    after = db.stats()
    assert before == after, "taking a snapshot must not move any counter"


def test_plan_query_execute_choice_split_matches_query(db, auction_document):
    choice = db.plan_query(ITEM_NAMES, name="q")
    result, executor = db.execute_choice(choice)
    assert result.same_contents(db.query(ITEM_NAMES))
    assert executor.run_stats(choice.best.plan_operator) is None  # no profile


def test_execute_choice_profile_feeds_explain_choice(db):
    choice = db.plan_query(ITEM_NAMES, name="q")
    result, executor = db.execute_choice(choice, profile=True)
    report = db.explain_choice(choice, executor, elapsed=0.5)
    assert report.analyzed
    assert report.actual_rows == len(result)
    assert report.actual_seconds == 0.5
    for entry in report.operators:
        assert entry.actual_rows is not None
    # without the executor the same choice explains un-analyzed
    assert db.explain_choice(choice).analyzed is False
