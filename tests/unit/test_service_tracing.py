"""The tracing layer: span trees, exporters, and explain-to-span expansion.

The load-bearing property is ``attach_operator_spans``: an analyzed
:class:`ExplainReport` must expand into a span tree whose *nesting mirrors
the operator depths* and whose spans carry the planner's estimated rows
next to the executor's actual rows.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.service.tracing import (
    JsonlExporter,
    RingBufferExporter,
    Span,
    Tracer,
    attach_operator_spans,
)
from repro.session.explain import ExplainOperator, ExplainReport


# --------------------------------------------------------------------------- #
# span mechanics
# --------------------------------------------------------------------------- #
def test_root_span_is_exported_on_end_with_the_whole_tree():
    ring = RingBufferExporter()
    tracer = Tracer(exporters=[ring])
    with tracer.trace("request", endpoint="/query") as root:
        with root.child("parse") as parse:
            parse.set_attribute("nodes", 3)
        with root.child("plan"):
            pass
    assert len(ring) == 1
    trace = ring.traces()[0]
    assert trace["name"] == "request"
    assert trace["attributes"]["endpoint"] == "/query"
    assert [child["name"] for child in trace["children"]] == ["parse", "plan"]
    assert trace["children"][0]["attributes"]["nodes"] == 3


def test_span_ids_follow_the_otel_shape():
    span = Tracer().trace("request")
    child = span.child("inner")
    assert len(span.trace_id) == 32 and len(span.span_id) == 16
    assert child.trace_id == span.trace_id
    assert child.parent_id == span.span_id
    assert span.parent_id is None


def test_exception_marks_the_span_as_error_and_reraises():
    ring = RingBufferExporter()
    tracer = Tracer(exporters=[ring])
    with pytest.raises(ValueError):
        with tracer.trace("request") as span:
            with span.child("explode"):
                raise ValueError("boom")
    trace = ring.traces()[0]
    assert trace["status"] == "error"
    assert trace["attributes"]["error"] == "ValueError"
    assert trace["children"][0]["status"] == "error"


def test_durations_are_measured_and_end_is_idempotent():
    with Tracer().trace("request") as span:
        pass
    first = span.duration_seconds
    assert first is not None and first >= 0
    span.end()  # a second end must not overwrite the measurement
    assert span.duration_seconds == first


def test_ring_buffer_is_bounded():
    ring = RingBufferExporter(capacity=3)
    tracer = Tracer(exporters=[ring])
    for index in range(5):
        with tracer.trace(f"request-{index}"):
            pass
    names = [trace["name"] for trace in ring.traces()]
    assert names == ["request-2", "request-3", "request-4"]


def test_add_exporter_after_construction():
    tracer = Tracer()
    ring = RingBufferExporter()
    tracer.add_exporter(ring)
    with tracer.trace("request"):
        pass
    assert len(ring) == 1


def test_jsonl_exporter_appends_one_line_per_trace(tmp_path):
    path = tmp_path / "traces.jsonl"
    exporter = JsonlExporter(path)
    tracer = Tracer(exporters=[exporter])
    with tracer.trace("first"):
        pass
    with tracer.trace("second") as span:
        with span.child("inner"):
            pass
    exporter.close()
    exporter.close()  # idempotent
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    first, second = (json.loads(line) for line in lines)
    assert first["name"] == "first"
    assert second["children"][0]["name"] == "inner"


def test_concurrent_traces_do_not_interleave_trees():
    ring = RingBufferExporter(capacity=64)
    tracer = Tracer(exporters=[ring])

    def one_request(index: int) -> None:
        with tracer.trace("request", index=index) as span:
            for position in range(3):
                with span.child(f"phase-{position}"):
                    pass

    threads = [
        threading.Thread(target=one_request, args=(index,)) for index in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    traces = ring.traces()
    assert len(traces) == 8
    assert {trace["trace_id"] for trace in traces} == set(
        trace["trace_id"] for trace in traces
    )
    for trace in traces:
        assert [child["name"] for child in trace["children"]] == [
            "phase-0",
            "phase-1",
            "phase-2",
        ]


# --------------------------------------------------------------------------- #
# explain → spans
# --------------------------------------------------------------------------- #
def _analyzed_report() -> ExplainReport:
    return ExplainReport(
        query_name="q",
        views_used=("v",),
        is_union=False,
        chosen_cost=30.0,
        estimated_rows=5.0,
        alternative_costs=(30.0,),
        analyzed=True,
        actual_rows=5,
        actual_seconds=0.01,
        operators=[
            ExplainOperator("Join", 0, 5.0, 10.0, 30.0,
                            order_decision="merge",
                            actual_rows=5, actual_seconds=0.004),
            ExplainOperator("ViewScan(v)", 1, 8.0, 10.0, 10.0,
                            access_path="scan",
                            actual_rows=8, actual_seconds=0.003),
            ExplainOperator("ViewScan(v)", 1, 8.0, 10.0, 10.0,
                            access_path="scan", shared=True,
                            actual_rows=8, actual_seconds=0.003),
        ],
    )


def test_attach_operator_spans_mirrors_depths_and_carries_both_row_counts():
    parent = Tracer().trace("execute")
    attach_operator_spans(parent, _analyzed_report())
    assert len(parent.children) == 1
    join = parent.children[0]
    assert join.name == "operator:Join"
    assert join.attributes["estimated_rows"] == 5.0
    assert join.attributes["actual_rows"] == 5
    assert join.attributes["order_decision"] == "merge"
    assert join.duration_seconds == 0.004
    scans = join.children
    assert [span.name for span in scans] == ["operator:ViewScan(v)"] * 2
    assert scans[0].attributes["access_path"] == "scan"
    assert "shared" not in scans[0].attributes
    assert scans[1].attributes["shared"] is True


def test_attach_operator_spans_without_actuals_reports_zero_duration():
    report = ExplainReport(
        query_name="q", views_used=("v",), is_union=False,
        chosen_cost=1.0, estimated_rows=1.0, alternative_costs=(1.0,),
        operators=[ExplainOperator("ViewScan(v)", 0, 1.0, 1.0, 1.0)],
    )
    parent = Tracer().trace("execute")
    attach_operator_spans(parent, report)
    span = parent.children[0]
    assert "actual_rows" not in span.attributes
    assert span.duration_seconds == 0.0


def test_attach_operator_spans_handles_depth_pops():
    # depth sequence 0,1,2,1: the last operator must attach to the root
    report = ExplainReport(
        query_name="q", views_used=("v",), is_union=False,
        chosen_cost=1.0, estimated_rows=1.0, alternative_costs=(1.0,),
        operators=[
            ExplainOperator("Root", 0, 1.0, 1.0, 1.0),
            ExplainOperator("Mid", 1, 1.0, 1.0, 1.0),
            ExplainOperator("Leaf", 2, 1.0, 1.0, 1.0),
            ExplainOperator("Sibling", 1, 1.0, 1.0, 1.0),
        ],
    )
    parent = Tracer().trace("execute")
    attach_operator_spans(parent, report)
    root = parent.children[0]
    assert [span.name for span in root.children] == [
        "operator:Mid",
        "operator:Sibling",
    ]
    assert [span.name for span in root.children[0].children] == ["operator:Leaf"]
