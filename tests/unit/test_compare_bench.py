"""The CI bench-delta gate's comparison logic (``tools/compare_bench.py``)."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent

sys.path.insert(0, str(ROOT / "tools"))
from compare_bench import (  # noqa: E402
    NEW,
    OK,
    REGRESSION,
    SKIPPED,
    compare_dirs,
    iter_speedups,
    render_markdown,
)


def _write(directory: Path, name: str, point: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(point))


def _statuses(rows):
    return {(row["file"], row["metric"]): row["status"] for row in rows}


def test_iter_speedups_finds_top_level_and_workload_fields():
    point = {
        "speedup": 2.5,
        "single_worker_speedup": 1.4,
        "serial_seconds": 9.0,  # not a speedup: ignored
        "cpu_count": 4,
        "workloads": [
            {"workload": "fig13", "speedup": 2.1, "rows_returned": 10},
            {"workload": "fig14", "single_worker_speedup": 1.3},
        ],
    }
    labels = dict(iter_speedups(point))
    assert labels == {
        "speedup": 2.5,
        "single_worker_speedup": 1.4,
        "fig13:speedup": 2.1,
        "fig14:single_worker_speedup": 1.3,
    }


def test_regression_beyond_threshold_is_flagged(tmp_path):
    _write(tmp_path / "old", "a.json", {"speedup": 2.0, "cpu_count": 4})
    _write(tmp_path / "new", "a.json", {"speedup": 1.5, "cpu_count": 4})
    rows = compare_dirs(tmp_path / "old", tmp_path / "new", threshold=0.2)
    assert _statuses(rows) == {("a.json", "speedup"): REGRESSION}


def test_drop_within_threshold_and_improvement_are_ok(tmp_path):
    _write(
        tmp_path / "old", "a.json",
        {"speedup": 2.0, "pool_speedup": 1.5, "cpu_count": 4},
    )
    _write(
        tmp_path / "new", "a.json",
        {"speedup": 1.7, "pool_speedup": 3.0, "cpu_count": 4},
    )
    rows = compare_dirs(tmp_path / "old", tmp_path / "new", threshold=0.2)
    assert _statuses(rows) == {
        ("a.json", "speedup"): OK,
        ("a.json", "pool_speedup"): OK,
    }


def test_missing_previous_artifact_is_warn_only(tmp_path):
    _write(tmp_path / "new", "a.json", {"speedup": 0.1, "cpu_count": 4})
    rows = compare_dirs(None, tmp_path / "new", threshold=0.2)
    assert _statuses(rows) == {("a.json", "speedup"): NEW}


def test_new_benchmark_file_is_warn_only(tmp_path):
    _write(tmp_path / "old", "a.json", {"speedup": 2.0, "cpu_count": 4})
    _write(tmp_path / "new", "a.json", {"speedup": 2.0, "cpu_count": 4})
    _write(tmp_path / "new", "b.json", {"speedup": 0.5, "cpu_count": 4})
    rows = compare_dirs(tmp_path / "old", tmp_path / "new", threshold=0.2)
    assert _statuses(rows) == {
        ("a.json", "speedup"): OK,
        ("b.json", "speedup"): NEW,
    }


def test_cross_hardware_comparison_is_skipped(tmp_path):
    # a regression-sized drop, but the cpu_count changed: refuse to compare
    _write(tmp_path / "old", "a.json", {"speedup": 4.0, "cpu_count": 16})
    _write(tmp_path / "new", "a.json", {"speedup": 1.0, "cpu_count": 1})
    rows = compare_dirs(tmp_path / "old", tmp_path / "new", threshold=0.2)
    assert _statuses(rows) == {("a.json", "speedup"): SKIPPED}


def test_unstamped_points_still_compare(tmp_path):
    # pre-gate artifacts carry no cpu_count; comparison proceeds
    _write(tmp_path / "old", "a.json", {"speedup": 2.0})
    _write(tmp_path / "new", "a.json", {"speedup": 1.0, "cpu_count": 4})
    rows = compare_dirs(tmp_path / "old", tmp_path / "new", threshold=0.2)
    assert _statuses(rows) == {("a.json", "speedup"): REGRESSION}


def test_markdown_table_lists_every_row(tmp_path):
    _write(tmp_path / "old", "a.json", {"speedup": 2.0, "cpu_count": 4})
    _write(tmp_path / "new", "a.json", {"speedup": 1.0, "cpu_count": 4})
    rows = compare_dirs(tmp_path / "old", tmp_path / "new", threshold=0.2)
    table = render_markdown(rows, threshold=0.2, had_old=True)
    assert "| a.json | speedup | 2.00x | 1.00x | -50.0% | **REGRESSION** |" in table


def test_cli_exit_codes_and_summary(tmp_path):
    _write(tmp_path / "old", "a.json", {"speedup": 2.0, "cpu_count": 4})
    _write(tmp_path / "new", "a.json", {"speedup": 1.0, "cpu_count": 4})
    summary = tmp_path / "summary.md"
    script = ROOT / "tools" / "compare_bench.py"

    failing = subprocess.run(
        [
            sys.executable, str(script),
            "--old", str(tmp_path / "old"),
            "--new", str(tmp_path / "new"),
            "--summary", str(summary),
        ],
        capture_output=True, text=True, timeout=60,
    )
    assert failing.returncode == 1
    assert "REGRESSION" in failing.stderr
    assert "## Bench delta" in summary.read_text()

    # without a previous directory the same drop is warn-only: exit 0
    passing = subprocess.run(
        [
            sys.executable, str(script),
            "--old", str(tmp_path / "missing"),
            "--new", str(tmp_path / "new"),
        ],
        capture_output=True, text=True, timeout=60,
    )
    assert passing.returncode == 0
    assert "warn-only" in passing.stdout
