"""The metrics layer: counters, gauges, histograms, rendering, slow queries.

The quantitative contract under test: histogram quantile estimates use
linear interpolation inside the winning bucket (the ``histogram_quantile``
estimate), cumulative bucket counts follow Prometheus ``le`` semantics, and
the rendered text parses as the exposition format (# HELP / # TYPE plus
samples).
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServiceError
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SlowQueryLog,
)


# --------------------------------------------------------------------------- #
# counters and gauges
# --------------------------------------------------------------------------- #
def test_counter_accumulates_per_label_set():
    counter = Counter("requests_total", "Requests.", labelnames=("endpoint",))
    counter.inc({"endpoint": "/query"})
    counter.inc({"endpoint": "/query"}, amount=2)
    counter.inc({"endpoint": "/healthz"})
    assert counter.value({"endpoint": "/query"}) == 3
    assert counter.value({"endpoint": "/healthz"}) == 1
    assert counter.value({"endpoint": "/never"}) == 0


def test_counter_rejects_negative_increments():
    counter = Counter("requests_total", "Requests.")
    with pytest.raises(ServiceError, match="only go up"):
        counter.inc(amount=-1)


def test_label_names_are_enforced():
    counter = Counter("requests_total", "Requests.", labelnames=("endpoint",))
    with pytest.raises(ServiceError, match="label"):
        counter.inc()  # missing the label
    with pytest.raises(ServiceError, match="label"):
        counter.inc({"endpoint": "/q", "extra": "x"})


def test_gauge_sets_and_overwrites():
    gauge = Gauge("views", "Views declared.")
    gauge.set(3)
    gauge.set(7)
    assert gauge.value() == 7.0


def test_counter_is_thread_safe():
    counter = Counter("requests_total", "Requests.")

    def hammer() -> None:
        for _ in range(1000):
            counter.inc()

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value() == 8000


# --------------------------------------------------------------------------- #
# histograms
# --------------------------------------------------------------------------- #
def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ServiceError, match="strictly increasing"):
        Histogram("h", "x", buckets=(1.0, 0.5))
    with pytest.raises(ServiceError, match="strictly increasing"):
        Histogram("h", "x", buckets=(1.0, 1.0))


def test_histogram_buckets_follow_le_semantics():
    histogram = Histogram("h", "x", buckets=(1.0, 2.0))
    for value in (0.5, 1.0, 1.5, 5.0):
        histogram.observe(value)
    lines = histogram.samples()
    # an observation exactly at a bound counts in that bound's bucket
    assert 'h_bucket{le="1"} 2' in lines
    assert 'h_bucket{le="2"} 3' in lines
    assert 'h_bucket{le="+Inf"} 4' in lines
    assert "h_count 4" in lines
    assert "h_sum 8" in lines


def test_quantile_interpolates_inside_the_winning_bucket():
    histogram = Histogram("h", "x", buckets=(1.0, 2.0, 4.0))
    for _ in range(10):
        histogram.observe(1.5)  # all ten land in the (1, 2] bucket
    # rank 5 of 10 → halfway through the bucket: 1 + (2-1) * 0.5
    assert histogram.quantile(0.5) == pytest.approx(1.5)
    # rank 9 of 10 → 90% through the bucket
    assert histogram.quantile(0.9) == pytest.approx(1.9)


def test_quantile_spanning_buckets():
    histogram = Histogram("h", "x", buckets=(1.0, 2.0))
    for _ in range(5):
        histogram.observe(0.5)
    for _ in range(5):
        histogram.observe(1.5)
    assert histogram.quantile(0.25) == pytest.approx(0.5)
    assert histogram.quantile(0.75) == pytest.approx(1.5)


def test_quantile_clamps_at_the_last_finite_bound():
    histogram = Histogram("h", "x", buckets=(1.0,))
    histogram.observe(100.0)  # +Inf bucket
    assert histogram.quantile(0.99) == 1.0


def test_quantile_of_empty_series_is_zero():
    assert Histogram("h", "x").quantile(0.5) == 0.0


def test_quantile_validates_q():
    histogram = Histogram("h", "x")
    with pytest.raises(ServiceError):
        histogram.quantile(0.0)
    with pytest.raises(ServiceError):
        histogram.quantile(1.0)


def test_histogram_count_per_label_set():
    histogram = Histogram("h", "x", labelnames=("phase",))
    histogram.observe(0.1, {"phase": "plan"})
    histogram.observe(0.2, {"phase": "plan"})
    histogram.observe(0.3, {"phase": "execute"})
    assert histogram.count({"phase": "plan"}) == 2
    assert histogram.count({"phase": "execute"}) == 1


# --------------------------------------------------------------------------- #
# the registry
# --------------------------------------------------------------------------- #
def test_registry_is_idempotent_per_name():
    registry = MetricsRegistry()
    first = registry.counter("c", "x")
    second = registry.counter("c", "x")
    assert first is second


def test_registry_rejects_kind_conflicts():
    registry = MetricsRegistry()
    registry.counter("c", "x")
    with pytest.raises(ServiceError, match="already registered"):
        registry.gauge("c", "x")


def test_render_produces_the_exposition_format():
    registry = MetricsRegistry()
    registry.counter("requests_total", "Requests.", labelnames=("endpoint",)).inc(
        {"endpoint": "/query"}
    )
    registry.gauge("views", "Views.").set(2)
    registry.histogram("latency", "Latency.", buckets=(0.1, 1.0)).observe(0.05)
    text = registry.render()
    assert "# HELP requests_total Requests.\n# TYPE requests_total counter" in text
    assert 'requests_total{endpoint="/query"} 1' in text
    assert "# TYPE views gauge" in text and "views 2" in text
    assert "# TYPE latency histogram" in text
    assert 'latency_bucket{le="0.1"} 1' in text
    assert 'latency_bucket{le="+Inf"} 1' in text
    assert "latency_sum 0.05" in text and "latency_count 1" in text
    assert text.endswith("\n")


# --------------------------------------------------------------------------- #
# the slow-query log
# --------------------------------------------------------------------------- #
def test_slow_query_log_records_only_above_threshold():
    log = SlowQueryLog(threshold_seconds=0.1)
    assert not log.observe("q", "abcd", "ViewScan(v)", 0.05, trace_id="t1")
    assert log.observe("q", "abcd", "ViewScan(v)", 0.15, trace_id="t2")
    assert len(log) == 1
    entry = log.entries()[0]
    assert entry["fingerprint"] == "abcd"
    assert entry["plan"] == "ViewScan(v)"
    assert entry["trace_id"] == "t2"
    assert entry["seconds"] == 0.15


def test_slow_query_log_is_bounded():
    log = SlowQueryLog(threshold_seconds=0.0, capacity=2)
    for index in range(4):
        log.observe(f"q{index}", "f", "p", 1.0)
    assert [entry["query_name"] for entry in log.entries()] == ["q2", "q3"]
