"""ViewCatalog save/load: the snapshot parallel workers share.

A loaded catalog must behave exactly like the one that was saved — same
pruning, same prototypes, same rewritings — across the id()-keyed column
bookkeeping that a naive pickle would corrupt.
"""

from __future__ import annotations

import pickle
import re

import pytest

from repro import MaterializedView, build_summary, parse_parenthesized, parse_pattern
from repro.rewriting.algorithm import RewritingConfig
from repro.rewriting.rewriter import Rewriter
from repro.views.catalog import CATALOG_FORMAT_VERSION, CatalogFormatError, ViewCatalog

_ALIAS = re.compile(r"[@#]\d+")


def _fingerprint(outcome):
    return [
        (tuple(r.views_used), r.is_union, _ALIAS.sub("@N", r.plan.describe()))
        for r in outcome.rewritings
    ]


@pytest.fixture()
def setup():
    doc = parse_parenthesized(
        'site(regions(asia(item(name="pen") item(name="ink"))'
        ' europe(item(name="nib"))))',
        name="persist-doc",
    )
    summary = build_summary(doc)
    views = [
        MaterializedView(parse_pattern("site(//item[ID,V])", name="v_item"), doc),
        MaterializedView(parse_pattern("site(//name[ID,V])", name="v_name"), doc),
        MaterializedView(
            parse_pattern("site(//item[ID](/name[ID,V]))", name="v_in"), doc
        ),
    ]
    return doc, summary, views


def test_round_trip_preserves_rewritings(setup, tmp_path):
    _, summary, views = setup
    catalog = ViewCatalog(summary, views)
    path = tmp_path / "catalog.pkl"
    catalog.save(path)
    loaded = ViewCatalog.load(path)

    config = RewritingConfig(max_rewritings=4, time_budget_seconds=10.0)
    queries = [
        parse_pattern("site(//item[ID,V])"),
        parse_pattern("site(//name[ID,V])"),
        parse_pattern("site(//item(/name[ID,V]))"),
    ]
    original = Rewriter.from_catalog(catalog, config)
    restored = Rewriter.from_catalog(loaded, config)
    for query in queries:
        assert _fingerprint(original.rewrite(query)) == _fingerprint(
            restored.rewrite(query)
        )


def test_extents_are_stripped_by_default(setup, tmp_path):
    _, summary, views = setup
    path = tmp_path / "catalog.pkl"
    ViewCatalog(summary, views).save(path)
    loaded = ViewCatalog.load(path)
    assert all(not view.is_materialized for view in loaded.views)
    # the in-memory views are untouched by saving
    assert all(view.is_materialized for view in views)


def test_extents_can_be_included(setup, tmp_path):
    _, summary, views = setup
    path = tmp_path / "catalog.pkl"
    ViewCatalog(summary, views).save(path, include_extents=True)
    loaded = ViewCatalog.load(path)
    assert all(view.is_materialized for view in loaded.views)
    assert len(loaded.views[0].relation) == len(views[0].relation)


def test_statistics_snapshot_travels_with_the_catalog(setup, tmp_path):
    _, summary, views = setup
    catalog = ViewCatalog(summary, views)
    expected = catalog.statistics().view_rows("v_item")
    path = tmp_path / "catalog.pkl"
    catalog.save(path)
    loaded = ViewCatalog.load(path)
    # extents were stripped, yet the snapshot keeps the exact counts
    assert loaded.statistics().view_rows("v_item") == expected


def test_loaded_summaries_never_share_containment_tokens(setup, tmp_path):
    from repro.canonical.hashing import summary_token

    _, summary, views = setup
    path = tmp_path / "catalog.pkl"
    catalog = ViewCatalog(summary, views)
    summary_token(summary)  # force a token onto the summary being saved
    catalog.save(path)
    first = ViewCatalog.load(path)
    second = ViewCatalog.load(path)
    assert summary_token(first.summary) != summary_token(second.summary)
    assert summary_token(first.summary) != summary_token(summary)


def test_version_mismatch_is_rejected(setup, tmp_path):
    _, summary, views = setup
    path = tmp_path / "catalog.pkl"
    payload = {"format": CATALOG_FORMAT_VERSION + 1, "catalog": None}
    path.write_bytes(pickle.dumps(payload))
    with pytest.raises(CatalogFormatError, match="unsupported"):
        ViewCatalog.load(path)


def test_garbage_files_are_rejected(tmp_path):
    path = tmp_path / "not-a-catalog.pkl"
    path.write_bytes(b"definitely not pickle")
    with pytest.raises(CatalogFormatError):
        ViewCatalog.load(path)
    path.write_bytes(pickle.dumps([1, 2, 3]))
    with pytest.raises(CatalogFormatError, match="not a persisted view catalog"):
        ViewCatalog.load(path)


def test_views_supplying_respects_same_node_correlation(setup):
    """A view offering ID on one node and V on another (same summary path)
    must not count as supplying {ID, V} — Prop. 3.7 needs one node."""
    _, summary, _ = setup
    split = MaterializedView(
        parse_pattern("site(//item[ID], //item[V])", name="v_split")
    )
    whole = MaterializedView(parse_pattern("site(//item[ID,V])", name="v_whole"))
    catalog = ViewCatalog(summary, [split, whole])
    item = summary.node_by_path("/site/regions/asia/item").number
    supplying = catalog.views_supplying({item}, {"ID", "V"})
    assert "v_whole" in supplying
    assert "v_split" not in supplying
    # each attribute alone is offered by both
    assert catalog.views_with_attribute(item, "ID") and catalog.views_with_attribute(
        item, "V"
    )
