"""The containment memo and the canonical pattern keys it hashes on."""

from __future__ import annotations

import pytest

from repro import build_summary, parse_parenthesized
from repro.canonical.hashing import pattern_key, summary_token
from repro.containment.core import (
    ContainmentCache,
    clear_containment_cache,
    containment_cache,
    containment_cache_disabled,
    containment_deadline,
    containment_decision,
    is_contained,
    is_contained_in_union,
)
from repro.errors import ContainmentBudgetExceeded


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_containment_cache()
    yield
    clear_containment_cache()


class TestPatternKey:
    def test_same_structure_same_key(self, make_pattern):
        left = make_pattern("a(/b[ID](//c[V]))", name="one")
        right = make_pattern("a(/b[ID](//c[V]))", name="two")
        assert pattern_key(left) == pattern_key(right)

    def test_key_ignores_annotated_paths(self, make_pattern, auction_summary):
        from repro import annotate_paths

        plain = make_pattern("site(//item[ID])")
        annotated = annotate_paths(make_pattern("site(//item[ID])"), auction_summary)
        assert pattern_key(plain) == pattern_key(annotated)

    @pytest.mark.parametrize(
        "left_text,right_text",
        [
            ("a(/b[ID])", "a(//b[ID])"),  # axis
            ("a(/b[ID])", "a(/?b[ID])"),  # optional edge
            ("a(/b[ID])", "a(/b[ID,V])"),  # stored attributes
            ("a(/b[ID])", "a(/c[ID])"),  # label
            ("a(/b[ID])", "a(/b[ID]{v=3})"),  # predicate
        ],
    )
    def test_key_distinguishes_structure(self, make_pattern, left_text, right_text):
        assert pattern_key(make_pattern(left_text)) != pattern_key(
            make_pattern(right_text)
        )

    def test_key_distinguishes_return_order(self, make_pattern):
        left = make_pattern("a(/b[ID], /c[ID])")
        right = make_pattern("a(/b[ID], /c[ID])")
        returns = right.return_nodes()
        right.set_return_order(list(reversed(returns)))
        assert pattern_key(left) != pattern_key(right)

    def test_summary_tokens_are_distinct_and_stable(self):
        first = build_summary(parse_parenthesized("a(b c)", name="one"))
        second = build_summary(parse_parenthesized("a(b c)", name="two"))
        assert summary_token(first) != summary_token(second)
        assert summary_token(first) == summary_token(first)


class TestContainmentMemo:
    def test_repeat_decision_is_a_cache_hit(self, make_pattern, auction_summary):
        left = make_pattern("site(//item(/name))")
        right = make_pattern("site(//item)")
        cache = containment_cache()
        baseline_hits = cache.hits
        first = containment_decision(left.copy(), right.copy(), auction_summary,
                                     check_attributes=False)
        second = containment_decision(left.copy(), right.copy(), auction_summary,
                                      check_attributes=False)
        assert second is first  # the cached object itself
        assert cache.hits == baseline_hits + 1

    def test_cached_decisions_match_uncached(self, make_pattern, auction_summary):
        pairs = [
            ("site(//item(/name))", "site(//item)"),
            ("site(//item)", "site(//name)"),
            ("site(//name[V])", "site(//name[V])"),
        ]
        for left_text, right_text in pairs:
            left, right = make_pattern(left_text), make_pattern(right_text)
            with containment_cache_disabled():
                expected = is_contained(left, right, auction_summary,
                                        check_attributes=False)
            clear_containment_cache()
            assert is_contained(left, right, auction_summary,
                                check_attributes=False) == expected
            # second, memoised call agrees as well
            assert is_contained(left, right, auction_summary,
                                check_attributes=False) == expected

    def test_max_trees_bypasses_the_memo(self, make_pattern, auction_summary):
        left = make_pattern("site(//item)")
        cache = containment_cache()
        containment_decision(left, left, auction_summary, max_trees=5000)
        assert len(cache) == 0

    def test_union_results_are_cached_including_false(
        self, make_pattern, auction_summary
    ):
        contained = make_pattern("site(//item)")
        containers = [make_pattern("site(//name)"), make_pattern("site(//text)")]
        cache = containment_cache()
        first = is_contained_in_union(contained, containers, auction_summary,
                                      check_attributes=False)
        hits_before = cache.hits
        second = is_contained_in_union(contained, containers, auction_summary,
                                       check_attributes=False)
        assert first is False and second is False
        assert cache.hits == hits_before + 1

    def test_distinct_summaries_do_not_share_entries(self, make_pattern):
        first = build_summary(parse_parenthesized("a(b)", name="one"))
        second = build_summary(parse_parenthesized("a(c)", name="two"))
        pattern = make_pattern("a(//b)")
        assert is_contained(pattern, pattern, first, check_attributes=False)
        # on `second`, a(//b) is unsatisfiable -> contained in anything of the
        # same shape; the point is the cache must not replay `first`'s entry
        assert len(containment_cache()) == 1
        is_contained(pattern, pattern, second, check_attributes=False)
        assert len(containment_cache()) == 2


class TestContainmentDeadline:
    def test_expired_deadline_aborts_and_caches_nothing(
        self, make_pattern, auction_summary
    ):
        pattern = make_pattern("site(//item(/?name, /?description))")
        with containment_deadline(0.0):  # already in the past
            with pytest.raises(ContainmentBudgetExceeded):
                is_contained(pattern, pattern, auction_summary,
                             check_attributes=False)
        assert len(containment_cache()) == 0
        # outside the block the same test completes (and is memoised)
        assert is_contained(pattern, pattern, auction_summary,
                            check_attributes=False)
        assert len(containment_cache()) == 1

    def test_nested_deadlines_keep_the_tighter_one(
        self, make_pattern, auction_summary
    ):
        import time as time_module

        pattern = make_pattern("site(//item(/?name))")
        far = time_module.perf_counter() + 60.0
        with containment_deadline(far):
            with containment_deadline(0.0):
                with pytest.raises(ContainmentBudgetExceeded):
                    is_contained(pattern, pattern, auction_summary,
                                 check_attributes=False)
            # after leaving the inner block the far deadline applies again
            assert is_contained(pattern, pattern, auction_summary,
                                check_attributes=False)

    def test_none_deadline_is_a_no_op(self, make_pattern, auction_summary):
        pattern = make_pattern("site(//item)")
        with containment_deadline(None):
            assert is_contained(pattern, pattern, auction_summary,
                                check_attributes=False)


class TestCacheMechanics:
    def test_lru_eviction(self):
        cache = ContainmentCache(maxsize=2)
        cache.store(("a",), 1)
        cache.store(("b",), 2)
        assert cache.lookup(("a",)) == 1  # refresh "a"
        cache.store(("c",), 3)  # evicts "b"
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) == 1
        assert cache.lookup(("c",)) == 3

    def test_clear_resets_stats(self):
        cache = ContainmentCache(maxsize=4)
        cache.store(("a",), 1)
        cache.lookup(("a",))
        cache.lookup(("missing",))
        cache.clear()
        assert cache.info() == {"hits": 0, "misses": 0, "size": 0, "maxsize": 4}

    def test_disabled_cache_neither_reads_nor_writes(self):
        cache = containment_cache()
        with containment_cache_disabled():
            cache.store(("key",), 1)
            assert cache.lookup(("key",)) is None
        assert len(cache) == 0
        assert cache.enabled
