"""Unit tests for the pattern AST, the DSL parser and the XPath/XQuery compilers."""

import pytest

from repro import Axis, PatternNode, TreePattern, parse_pattern
from repro.errors import PatternError, PatternParseError
from repro.patterns.xpath import xpath_to_pattern
from repro.patterns.xquery import xquery_to_pattern


class TestPatternAST:
    def test_add_child_defaults(self):
        root = PatternNode("a")
        child = root.add_child("b")
        assert child.axis is Axis.CHILD
        assert child.parent is root
        assert not child.optional and not child.nested

    def test_attributes_normalised_and_validated(self):
        node = PatternNode("a", attributes=("id", "v", "ID"))
        assert node.attributes == ("ID", "V")
        with pytest.raises(PatternError):
            PatternNode("a", attributes=("XX",))

    def test_is_return_from_attributes_or_flag(self):
        assert PatternNode("a", attributes=("ID",)).is_return
        assert PatternNode("a", is_return=True).is_return
        assert not PatternNode("a").is_return

    def test_root_cannot_be_optional(self):
        with pytest.raises(PatternError):
            TreePattern(PatternNode("a", optional=True))

    def test_size_arity_and_feature_flags(self):
        pattern = parse_pattern("a(//b[ID], /?c{v>2}, /~d[V])")
        assert pattern.size == 4
        assert pattern.arity == 2
        assert pattern.has_optional_edges()
        assert pattern.has_nested_edges()
        assert pattern.has_predicates()

    def test_nesting_depth(self):
        pattern = parse_pattern("a(/~b(/c(/~d[V])))")
        d = pattern.nodes()[-1]
        assert d.nesting_depth() == 2

    def test_copy_is_structural_copy(self):
        pattern = parse_pattern("a(//b[ID,V]{v=3}(/?c))")
        clone = pattern.copy()
        assert clone == pattern
        assert clone.nodes()[1] is not pattern.nodes()[1]

    def test_strict_unnested_core_versions(self):
        pattern = parse_pattern("a(//?b[ID], /~c[V]{v>1})")
        assert not pattern.strict_version().has_optional_edges()
        assert not pattern.unnested_version().has_nested_edges()
        core = pattern.conjunctive_core()
        assert not core.has_predicates()
        assert core.arity == pattern.arity

    def test_with_return_nodes(self):
        pattern = parse_pattern("a(//b[ID], //c[V])")
        b_node = pattern.nodes()[1]
        projected = pattern.with_return_nodes([b_node])
        assert projected.arity == 1
        assert projected.return_nodes()[0].label == "b"

    def test_with_return_nodes_rejects_foreign_node(self):
        pattern = parse_pattern("a(//b[ID])")
        with pytest.raises(PatternError):
            pattern.with_return_nodes([PatternNode("x")])

    def test_explicit_return_order(self):
        pattern = parse_pattern("a(//b[ID], //c[V])")
        b_node, c_node = pattern.return_nodes()
        pattern.set_return_order([c_node, b_node])
        assert [n.label for n in pattern.return_nodes()] == ["c", "b"]
        clone = pattern.copy()
        assert [n.label for n in clone.return_nodes()] == ["c", "b"]

    def test_set_return_order_validates(self):
        pattern = parse_pattern("a(//b[ID], //c)")
        c_node = pattern.nodes()[2]
        with pytest.raises(PatternError):
            pattern.set_return_order([c_node])  # not a return node

    def test_from_path(self):
        pattern = TreePattern.from_path(
            ["a", "b", "c"], axes=[Axis.CHILD, Axis.DESCENDANT], attributes=("ID",)
        )
        assert pattern.to_text() == "a(/b(//c[ID]))"

    def test_structural_equality_includes_predicates(self):
        left = parse_pattern("a(//b[ID]{v>2})")
        right = parse_pattern("a(//b[ID]{v>2})")
        different = parse_pattern("a(//b[ID]{v>3})")
        assert left == right
        assert left != different
        assert hash(left) == hash(right)


class TestPatternDSL:
    def test_round_trip(self):
        texts = [
            "a(//b[ID,V](/c{v=3}), /?d[C], //~e[L])",
            "site(//item[ID](/name[V], //?listitem[C]))",
            "a(//*[R](/b, /d))",
        ]
        for text in texts:
            pattern = parse_pattern(text)
            assert parse_pattern(pattern.to_text()) == pattern

    def test_axis_and_modifiers(self):
        pattern = parse_pattern("a(//?~b[V])")
        b = pattern.nodes()[1]
        assert b.axis is Axis.DESCENDANT
        assert b.optional and b.nested

    def test_default_return_node_is_last(self):
        pattern = parse_pattern("a(/b(/c))")
        assert [n.label for n in pattern.return_nodes()] == ["c"]

    def test_predicate_parsed(self):
        pattern = parse_pattern("a(/b{v > 2 and v < 9})")
        assert pattern.nodes()[1].predicate.evaluate(5)
        assert not pattern.nodes()[1].predicate.evaluate(9)

    def test_parse_errors(self):
        for text in ["a(b)", "a(/b", "a(/b[XX])", "a(/b{v>})", "a(/b) extra"]:
            with pytest.raises((PatternParseError, Exception)):
                parse_pattern(text)


class TestXPathCompiler:
    def test_simple_path(self):
        pattern = xpath_to_pattern("/site/regions//item")
        assert pattern.to_text() == "site(/regions(//item[ID,V]))"

    def test_leading_descendant(self):
        pattern = xpath_to_pattern("//item/name")
        assert pattern.root.label == "*"
        assert pattern.nodes()[1].axis is Axis.DESCENDANT

    def test_existential_qualifier(self):
        pattern = xpath_to_pattern("/site//item[mailbox//mail]/name")
        labels = [n.label for n in pattern.nodes()]
        assert "mailbox" in labels and "mail" in labels
        assert pattern.return_nodes()[0].label == "name"

    def test_value_qualifier(self):
        pattern = xpath_to_pattern("/a/b[c > 3]")
        c = [n for n in pattern.nodes() if n.label == "c"][0]
        assert c.predicate.evaluate(4) and not c.predicate.evaluate(3)

    def test_self_value_qualifier(self):
        pattern = xpath_to_pattern("/a/b[. = 'x']")
        assert pattern.return_nodes()[0].predicate.evaluate("x")

    def test_text_function_returns_value_only(self):
        pattern = xpath_to_pattern("/a/b/text()")
        assert pattern.return_nodes()[0].attributes == ("V",)

    def test_rejects_relative_paths(self):
        with pytest.raises(PatternParseError):
            xpath_to_pattern("a/b")


class TestXQueryCompiler:
    RUNNING_EXAMPLE = """
        for $x in doc("XMark.xml")//item[//mail] return
            <res> { $x/name/text(),
                    for $y in $x//listitem return
                        <key> { $y//keyword } </key> } </res>
    """

    def test_running_example_shape(self):
        pattern = xquery_to_pattern(self.RUNNING_EXAMPLE)
        labels = {n.label for n in pattern.nodes()}
        assert {"item", "mail", "name", "listitem", "keyword"} <= labels
        item = [n for n in pattern.nodes() if n.label == "item"][0]
        assert "ID" in item.attributes
        listitem = [n for n in pattern.nodes() if n.label == "listitem"][0]
        assert listitem.nested and listitem.optional
        name = [n for n in pattern.nodes() if n.label == "name"][0]
        assert name.optional and "V" in name.attributes
        keyword = [n for n in pattern.nodes() if n.label == "keyword"][0]
        assert "C" in keyword.attributes

    def test_where_clause_becomes_predicate(self):
        pattern = xquery_to_pattern(
            'for $x in doc("d")//person where $x/age > 30 return <r> { $x/name/text() } </r>'
        )
        age = [n for n in pattern.nodes() if n.label == "age"][0]
        assert age.predicate.evaluate(40) and not age.predicate.evaluate(30)

    def test_variable_must_be_bound(self):
        with pytest.raises(PatternParseError):
            xquery_to_pattern('for $x in doc("d")//a return <r> { $y/b } </r>')

    def test_nested_flwr_only_outer_doc(self):
        with pytest.raises(PatternParseError):
            xquery_to_pattern(
                'for $x in doc("d")//a return for $y in doc("e")//b return <r> { $y/c } </r>'
            )
