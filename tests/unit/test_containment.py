"""Unit tests for containment under summary constraints (Sections 3 and 4)."""

from repro import (
    are_equivalent,
    build_summary,
    is_contained,
    is_contained_in_union,
    parse_parenthesized,
    parse_pattern,
    summary_from_paths,
)
from repro.containment.core import containment_decision


class TestConjunctiveContainment:
    def test_descendant_chain_containment(self, figure2_summary):
        narrower = parse_pattern("a(//b(//d[R]))")
        wider = parse_pattern("a(//d[R])")
        assert is_contained(narrower, wider, figure2_summary)
        assert not is_contained(wider, narrower, figure2_summary)

    def test_summary_implied_equivalence(self):
        # the paper's example: S = r(a(b)), q = /r//a//b, p = /r//b, p ≡S q
        summary = summary_from_paths(["/r", "/r/a", "/r/a/b"])
        query = parse_pattern("r(//a(//b[R]))")
        view = parse_pattern("r(//b[R])")
        assert are_equivalent(query, view, summary, check_attributes=False)

    def test_containment_is_summary_dependent(self):
        # without the summary constraint, /r//b is NOT contained in /r//a//b
        loose_summary = summary_from_paths(["/r", "/r/b", "/r/a", "/r/a/b"])
        query = parse_pattern("r(//a(//b[R]))")
        view = parse_pattern("r(//b[R])")
        assert is_contained(query, view, loose_summary, check_attributes=False)
        assert not is_contained(view, query, loose_summary, check_attributes=False)

    def test_child_edge_contained_in_descendant_edge(self, figure2_summary):
        child = parse_pattern("a(/c(/d[R]))")
        descendant = parse_pattern("a(//d[R])")
        assert is_contained(child, descendant, figure2_summary)

    def test_self_containment(self, figure2_summary):
        pattern = parse_pattern("a(//*[R](/b, /d))")
        assert is_contained(pattern, pattern, figure2_summary)

    def test_unsatisfiable_pattern_contained_in_anything(self, figure2_summary):
        empty = parse_pattern("a(/e[R])")
        other = parse_pattern("a(/b[R])")
        decision = containment_decision(empty, other, figure2_summary)
        assert decision.contained
        assert decision.canonical_trees_checked == 0

    def test_arity_mismatch_is_rejected(self, figure2_summary):
        one = parse_pattern("a(//b[R])")
        two = parse_pattern("a(//b[R], //d[R])")
        assert not is_contained(one, two, figure2_summary)

    def test_wildcard_generalisation(self, figure2_summary):
        concrete = parse_pattern("a(/c(/b[R]))")
        wildcard = parse_pattern("a(/*(/b[R]))")
        assert is_contained(concrete, wildcard, figure2_summary)
        # the * also matches /a/d/b which has b children, so the reverse fails
        assert not is_contained(wildcard, concrete, figure2_summary)


class TestEnhancedSummaryContainment:
    def test_figure8_style_equivalence_under_strong_edges(self):
        # Figure 8's idea: strong edges make branches of the container
        # pattern implicit in the contained pattern's canonical trees.
        strong_paths = [
            "/a",
            "/a/b",
            "/a/b/c",
            ("/a/b/c/b", True),
            "/a/b/c/d",
            "/a/b/e",
            ("/a/f", True),
        ]
        weak_paths = [p if isinstance(p, str) else p[0] for p in strong_paths]
        strong_summary = summary_from_paths(strong_paths)
        weak_summary = summary_from_paths(weak_paths)

        p1 = parse_pattern("a(//d[R])")
        p2 = parse_pattern("a(//d[R], /f)")  # needs the strong /a/f edge
        p3 = parse_pattern("a(//c(/b, /d[R]))")  # needs the strong c->b edge
        assert is_contained(p1, p2, strong_summary, check_attributes=False)
        assert not is_contained(p1, p2, weak_summary, check_attributes=False)
        assert is_contained(p1, p3, strong_summary, check_attributes=False)
        assert not is_contained(p1, p3, weak_summary, check_attributes=False)
        # and the reverse directions hold unconditionally
        assert is_contained(p2, p1, weak_summary, check_attributes=False)
        assert is_contained(p3, p1, weak_summary, check_attributes=False)


class TestDecoratedContainment:
    def test_predicate_strengthening(self, figure2_summary):
        eq3 = parse_pattern("a(//c[R]{v=3})")
        gt1 = parse_pattern("a(//c[R]{v>1})")
        assert is_contained(eq3, gt1, figure2_summary)
        assert not is_contained(gt1, eq3, figure2_summary)

    def test_incomparable_predicates(self, figure2_summary):
        low = parse_pattern("a(//c[R]{v<3})")
        high = parse_pattern("a(//c[R]{v>5})")
        assert not is_contained(low, high, figure2_summary)
        assert not is_contained(high, low, figure2_summary)

    def test_predicate_on_non_return_node(self, figure2_summary):
        narrower = parse_pattern("a(/c{v=3}(/b[R]))")
        wider = parse_pattern("a(/c(/b[R]))")
        assert is_contained(narrower, wider, figure2_summary)
        assert not is_contained(wider, narrower, figure2_summary)

    def test_union_with_value_coverage(self):
        # Section 4.2 worked example: p{v>0} is covered by {v=3} ∪ {v<5,v>2}-style
        # unions only when the value regions add up.
        doc = parse_parenthesized('a(b(c="3" d="4") d(c="1" e="2"))')
        summary = build_summary(doc)
        target = parse_pattern("a(//c[R]{v>0})")
        covering = [
            parse_pattern("a(//c[R]{v>0 and v<5})"),
            parse_pattern("a(//c[R]{v>2})"),
        ]
        not_covering = [
            parse_pattern("a(//c[R]{v>0 and v<5})"),
            parse_pattern("a(//c[R]{v>6})"),
        ]
        assert is_contained_in_union(target, covering, summary)
        assert is_contained_in_union(target, covering[:1], summary) is False
        assert not is_contained_in_union(target, not_covering[1:], summary)


class TestUnionContainment:
    def test_structural_union(self, figure2_summary):
        # every b is either a child of the root, of c, or deeper under d
        target = parse_pattern("a(//b[R])")
        parts = [
            parse_pattern("a(/b[R])"),
            parse_pattern("a(/c(/b[R]))"),
            parse_pattern("a(/d(//b[R]))"),
        ]
        assert is_contained_in_union(target, parts, figure2_summary)
        assert not is_contained_in_union(target, parts[:2], figure2_summary)

    def test_union_of_one_behaves_like_single(self, figure2_summary):
        narrower = parse_pattern("a(//b(//d[R]))")
        wider = parse_pattern("a(//d[R])")
        assert is_contained_in_union(narrower, [wider], figure2_summary)

    def test_empty_union_only_contains_unsatisfiable(self, figure2_summary):
        assert is_contained_in_union(parse_pattern("a(/e[R])"), [], figure2_summary)
        assert not is_contained_in_union(parse_pattern("a(/b[R])"), [], figure2_summary)


class TestAttributeAndNestedContainment:
    def test_attribute_signatures_must_match(self, figure2_summary):
        with_id = parse_pattern("a(//d[ID])")
        with_value = parse_pattern("a(//d[V])")
        both = parse_pattern("a(//d[ID,V])")
        assert not is_contained(with_id, with_value, figure2_summary)
        assert not is_contained(with_id, both, figure2_summary)
        assert is_contained(with_id, with_id, figure2_summary)
        # ignoring attributes restores plain containment
        assert is_contained(with_id, with_value, figure2_summary, check_attributes=False)

    def test_figure11_attribute_containment(self, figure2_summary):
        p1 = parse_pattern("a(/c[L](/b[ID,V]), //e[V,C])")
        p2 = parse_pattern("a(//*[L](/*[ID,V]), //e[V,C])")
        assert is_contained(p1, p2, figure2_summary)
        assert not is_contained(p2, p1, figure2_summary)

    def test_nesting_depth_must_match(self, figure2_summary):
        flat = parse_pattern("a(/c(/b[V]))")
        nested = parse_pattern("a(/~c(/b[V]))")
        assert not is_contained(flat, nested, figure2_summary)
        assert not is_contained(nested, flat, figure2_summary)
        assert is_contained(nested, nested, figure2_summary)

    def test_nesting_under_different_nodes_fails(self):
        # nesting below r and nesting below x group differently when r can
        # have several x children (Prop. 4.2 condition 2b)
        doc = parse_parenthesized("r(x(y(b)) x(y(b)))")
        summary = build_summary(doc)
        nest_under_x = parse_pattern("r(/x(/~y(/b[V])))")
        nest_under_r = parse_pattern("r(/~x(/y(/b[V])))")
        assert not is_contained(nest_under_x, nest_under_r, summary)
        assert not is_contained(nest_under_r, nest_under_x, summary)

    def test_one_to_one_relaxation_of_nesting(self):
        # with a single x per r (one-to-one edge), nesting under r or under x
        # groups identically, so the relaxed condition 2(b) accepts it
        doc = parse_parenthesized("r(x(y(b b) y(b)))")
        summary = build_summary(doc)
        assert summary.node_by_path("/r/x").one_to_one
        nest_under_x = parse_pattern("r(/x(/~y(/b[V])))")
        nest_under_r = parse_pattern("r(/~x(/y(/b[V])))")
        assert is_contained(nest_under_x, nest_under_r, summary)
        assert is_contained(nest_under_r, nest_under_x, summary)


class TestOptionalContainment:
    def test_figure10_optional_containment(self):
        doc = parse_parenthesized("a(c(b d(e) d(b(e))) c(d(e)))")
        summary = build_summary(doc)
        p1 = parse_pattern("a(/c[R](/b(/?*), /?d(/e)))")
        p2 = parse_pattern("a(/c[R](/?b, /?d))")
        assert is_contained(p1, p2, summary, check_attributes=False)

    def test_optional_version_not_contained_in_strict(self, figure2_summary):
        optional = parse_pattern("a(/c[R](/?b))")
        strict = parse_pattern("a(/c[R](/b))")
        assert is_contained(strict, optional, figure2_summary)
        # cannot go the other way: the optional pattern also returns c nodes
        # without b children... unless the summary makes b mandatory, which
        # it does not here (c nodes in figure2 all have b children, but the
        # edge is not strong because only instance counting defines it)
        decision = containment_decision(optional, strict, figure2_summary)
        assert isinstance(decision.contained, bool)
