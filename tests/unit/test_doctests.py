"""Tier-1 doctest runner for the public API surface.

The entry points of the pipeline — ``Database``, ``Rewriter``,
``ViewCatalog``, ``Planner``, ``PlanExecutor``, ``BatchEngine`` — carry
executable ``>>>``
examples in their docstrings (they double as the quick-start snippets the
docs link to).  This module runs them on every tier-1 invocation; the CI
``docs`` job additionally runs ``pytest --doctest-modules`` over the same
list, derived from :data:`DOCTEST_MODULES` below by
``tools/doctest_modules.py`` — this list is the single source of truth
(``test_doctest_tool_emits_this_list`` keeps the tool honest).
"""

from __future__ import annotations

import doctest
import pathlib
import subprocess
import sys

import pytest

import repro.algebra.columnar
import repro.algebra.execution
import repro.ingest.changelog
import repro.ingest.streaming
import repro.planning.planner
import repro.rewriting.batch
import repro.rewriting.rewriter
import repro.service.metrics
import repro.service.models
import repro.service.server
import repro.service.tracing
import repro.session.database
import repro.session.explain
import repro.views.catalog
import repro.views.extent_store
import repro.views.indexes

DOCTEST_MODULES = [
    repro.algebra.columnar,
    repro.algebra.execution,
    repro.ingest.changelog,
    repro.ingest.streaming,
    repro.planning.planner,
    repro.rewriting.batch,
    repro.rewriting.rewriter,
    repro.service.metrics,
    repro.service.models,
    repro.service.server,
    repro.service.tracing,
    repro.session.database,
    repro.session.explain,
    repro.views.catalog,
    repro.views.extent_store,
    repro.views.indexes,
]
"""The curated doctest list — the CI docs job derives its
``--doctest-modules`` arguments from it through ``tools/doctest_modules.py``."""


@pytest.mark.parametrize("module", DOCTEST_MODULES, ids=lambda m: m.__name__)
def test_public_api_doctests(module):
    results = doctest.testmod(module, optionflags=doctest.NORMALIZE_WHITESPACE)
    assert results.attempted > 0, (
        f"{module.__name__} is on the curated doctest list but carries no "
        f">>> examples — the public-API docstring contract is broken"
    )
    assert results.failed == 0, f"{results.failed} doctest(s) failed in {module.__name__}"


def test_doctest_tool_emits_this_list():
    """The CI docs job's list generator must track :data:`DOCTEST_MODULES`."""
    root = pathlib.Path(__file__).resolve().parent.parent.parent
    probe = subprocess.run(
        [sys.executable, str(root / "tools" / "doctest_modules.py")],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert probe.returncode == 0, probe.stderr
    expected = [
        pathlib.Path(module.__file__).resolve().relative_to(root).as_posix()
        for module in DOCTEST_MODULES
    ]
    assert probe.stdout.split() == expected, (
        "tools/doctest_modules.py and DOCTEST_MODULES have drifted apart"
    )
