"""Tier-1 doctest runner for the public API surface.

The entry points of the pipeline — ``Database``, ``Rewriter``,
``ViewCatalog``, ``Planner``, ``PlanExecutor``, ``BatchEngine`` — carry
executable ``>>>``
examples in their docstrings (they double as the quick-start snippets the
docs link to).  This module runs them on every tier-1 invocation; the CI
``docs`` job additionally runs ``pytest --doctest-modules`` over the same
curated list, so the two stay in lockstep by construction.
"""

from __future__ import annotations

import doctest

import pytest

import repro.algebra.execution
import repro.planning.planner
import repro.rewriting.batch
import repro.rewriting.rewriter
import repro.session.database
import repro.views.catalog
import repro.views.extent_store

DOCTEST_MODULES = [
    repro.algebra.execution,
    repro.planning.planner,
    repro.rewriting.batch,
    repro.rewriting.rewriter,
    repro.session.database,
    repro.views.catalog,
    repro.views.extent_store,
]
"""The curated doctest list — mirrored by the CI docs job; keep in sync."""


@pytest.mark.parametrize("module", DOCTEST_MODULES, ids=lambda m: m.__name__)
def test_public_api_doctests(module):
    results = doctest.testmod(module, optionflags=doctest.NORMALIZE_WHITESPACE)
    assert results.attempted > 0, (
        f"{module.__name__} is on the curated doctest list but carries no "
        f">>> examples — the public-API docstring contract is broken"
    )
    assert results.failed == 0, f"{results.failed} doctest(s) failed in {module.__name__}"
