"""``⋈=`` on Dewey order: the merge path against the hash-join oracle.

The ROADMAP item "merge-join order exploitation upstream": when both inputs
of an :class:`IdEqualityJoin` arrive annotated as Dewey-sorted on their join
columns, the executor now merges in one pass instead of hashing.  The hash
join stays available as ``PlanExecutor(..., id_join_strategy="hash")`` — the
oracle every test here compares against, row order included (the merge is
engineered to reproduce the hash join's left-row-major output exactly).
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.algebra.execution import PlanExecutor
from repro.algebra.operators import IdEqualityJoin, ViewScan
from repro.algebra.tuples import Relation
from repro.errors import PlanExecutionError
from repro.xmltree.ids import DeweyID


class _FakeView:
    def __init__(self, relation):
        self.relation = relation


def _relation(columns, ids_and_values, sorted_by=None):
    relation = Relation(columns)
    relation.rows = [
        tuple(DeweyID.from_string(value) if index == 0 and value is not None else value
              for index, value in enumerate(row))
        for row in ids_and_values
    ]
    relation.sorted_by = sorted_by
    return relation


def _run_both(left, right):
    """Execute L ⋈= R under both strategies; assert identity; return rows."""
    join = IdEqualityJoin(
        ViewScan("l"), ViewScan("r"), left_column="l.ID", right_column="r.ID"
    )
    views = {"l": _FakeView(left), "r": _FakeView(right)}
    merge_rows = PlanExecutor(views, id_join_strategy="merge").execute(join)
    hash_rows = PlanExecutor(views, id_join_strategy="hash").execute(join)
    assert merge_rows.rows == hash_rows.rows, (
        "merge and hash ⋈= must produce identical row lists"
    )
    assert merge_rows.column_names == hash_rows.column_names
    return merge_rows


def test_rejects_unknown_strategy():
    with pytest.raises(PlanExecutionError):
        PlanExecutor({}, id_join_strategy="bogus")


def test_merge_join_basic_identity():
    left = _relation(["ID", "V"], [("1.1", "a"), ("1.2", "b"), ("1.3", "c")], "ID")
    right = _relation(["ID", "W"], [("1.2", "x"), ("1.3", "y"), ("1.4", "z")], "ID")
    result = _run_both(left, right)
    assert len(result) == 2


def test_merge_join_duplicates_on_both_sides():
    left = _relation(
        ["ID", "V"], [("1.1", "a1"), ("1.1", "a2"), ("1.2", "b")], "ID"
    )
    right = _relation(
        ["ID", "W"], [("1.1", "x1"), ("1.1", "x2"), ("1.1", "x3")], "ID"
    )
    result = _run_both(left, right)
    assert len(result) == 6  # 2 left x 3 right for the shared identifier


def test_merge_join_null_identifiers_never_match():
    left = _relation(["ID", "V"], [(None, "n"), ("1.1", "a")], "ID")
    right = _relation(["ID", "W"], [(None, "m"), ("1.1", "x")], "ID")
    result = _run_both(left, right)
    assert len(result) == 1


def test_merge_join_empty_sides():
    left = _relation(["ID", "V"], [], "ID")
    right = _relation(["ID", "W"], [("1.1", "x")], "ID")
    assert len(_run_both(left, right)) == 0
    assert len(_run_both(right, left)) == 0


def test_unsorted_inputs_fall_back_to_hash():
    # deliberately unsorted rows with no annotation: the merge strategy must
    # notice (``sorted_by`` is None) and hash instead — results identical
    left = _relation(["ID", "V"], [("1.3", "c"), ("1.1", "a")], None)
    right = _relation(["ID", "W"], [("1.1", "x"), ("1.3", "y")], "ID")
    result = _run_both(left, right)
    assert len(result) == 2


def test_merge_join_prefix_identifiers_are_not_equal():
    # 1.1 is an ancestor of 1.1.1 but not equal to it; the merge's cursor
    # must not conflate prefix order with equality
    left = _relation(["ID", "V"], [("1.1", "a"), ("1.1.1", "b")], "ID")
    right = _relation(["ID", "W"], [("1.1.1", "x")], "ID")
    result = _run_both(left, right)
    assert len(result) == 1


def test_merge_join_preserves_left_order_annotation():
    left = _relation(["ID", "V"], [("1.1", "a"), ("1.2", "b")], "ID")
    right = _relation(["ID", "W"], [("1.1", "x")], "ID")
    join = IdEqualityJoin(
        ViewScan("l"), ViewScan("r"), left_column="l.ID", right_column="r.ID"
    )
    views = {"l": _FakeView(left), "r": _FakeView(right)}
    result = PlanExecutor(views).execute(join)
    assert result.sorted_by == "l.ID"


def test_ab_identity_on_real_rewritten_plans(auction_document):
    """Every fig-1 auction rewriting executes identically under both ⋈= paths."""
    database = Database(auction_document)
    database.create_view("site(//item[ID](/name[V]))", name="names")
    database.create_view("site(//item[ID](/description[ID]))", name="descr")
    query = "site(//item[ID](/name[V], /description[ID]))"
    outcome = database.rewrite(query)
    assert outcome.found
    for rewriting in outcome:
        merge = PlanExecutor(database.views, id_join_strategy="merge").execute(
            rewriting.plan
        )
        hash_ = PlanExecutor(database.views, id_join_strategy="hash").execute(
            rewriting.plan
        )
        assert merge.rows == hash_.rows
    database.close()
