"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro import build_summary, parse_parenthesized, parse_pattern
from repro.summary.index import SummaryIndex

# --------------------------------------------------------------------------- #
# hypothesis profiles
#
# The default profile derandomises example generation: the property tests
# draw random patterns whose canonical models are worst-case exponential, so
# an unlucky seed can turn a 2-second suite into a multi-minute one.  With
# ``derandomize=True`` every run replays the same (fast, pre-vetted) example
# sequence, which is what a <2-minute tier-1 needs.  Run the randomized
# exploration explicitly with ``HYPOTHESIS_PROFILE=thorough`` (nightly CI).
# --------------------------------------------------------------------------- #
settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("thorough", derandomize=False, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

# --------------------------------------------------------------------------- #
# the paper's running auction document (Figure 1, simplified)
# --------------------------------------------------------------------------- #
AUCTION_TEXT = (
    'site(regions(asia('
    'item(name="pen" '
    '     description(parlist(listitem(text(keyword="columbus" keyword="fountain"))'
    '                          listitem(text="steel"(bold="gold plated")))) '
    '     mailbox(mail(from="bob@u2.com" to="jane@u2.com" date="4/6/2006" text="hello"))) '
    'item(name="ink" description(parlist(listitem(text="invincia")))) '
    'item(name="vase" description(text="plain") mailbox(mail(from="jim@gmail.com" to="bill@aol.com" date="3/4/2006" text="can you")))'
    ')))'
)


@pytest.fixture(scope="session")
def auction_document():
    """A small XMark-like document mirroring Figure 1."""
    return parse_parenthesized(AUCTION_TEXT, name="auction")


@pytest.fixture(scope="session")
def auction_summary(auction_document):
    """The structural summary of the auction document."""
    return build_summary(auction_document)


@pytest.fixture(scope="session")
def auction_index(auction_summary):
    """A SummaryIndex over the auction summary."""
    return SummaryIndex(auction_summary)


# --------------------------------------------------------------------------- #
# the document / summary of Figures 2 and 3
# --------------------------------------------------------------------------- #
FIGURE2_TEXT = 'a(b="1" c(b="2" d="3") d(b(b="5" d="6" e="7") c="4" b(d="9")))'


@pytest.fixture(scope="session")
def figure2_document():
    """The sample document of Figure 2."""
    return parse_parenthesized(FIGURE2_TEXT, name="figure2")


@pytest.fixture(scope="session")
def figure2_summary(figure2_document):
    """The summary of the Figure 2 document (Figure 3)."""
    return build_summary(figure2_document)


# --------------------------------------------------------------------------- #
# pattern helpers
# --------------------------------------------------------------------------- #
@pytest.fixture()
def make_pattern():
    """Parse a pattern from DSL text (per-test convenience)."""

    def _make(text: str, name: str = "pattern"):
        return parse_pattern(text, name=name)

    return _make
