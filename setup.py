"""Setuptools shim; all metadata lives in pyproject.toml (src-layout).

Kept so environments that cannot run PEP 660 editable builds can still do
``python setup.py develop``-era installs; ``pip install -e .`` reads
pyproject.toml directly.
"""

from setuptools import setup

setup()
