"""Setuptools shim for environments that cannot run PEP 660 editable builds."""

from setuptools import setup

setup()
