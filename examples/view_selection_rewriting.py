"""Answering a workload of XPath queries from a handful of materialised views.

A small "view selection" scenario: given one document, a few views are
materialised once, and a workload of XPath queries is answered purely from
the views (whenever an equivalent rewriting exists), checking every answer
against direct evaluation.

Run with::

    python examples/view_selection_rewriting.py
"""

from repro import (
    MaterializedView,
    Rewriter,
    build_summary,
    evaluate_pattern,
    parse_pattern,
    xpath_to_pattern,
)
from repro.rewriting import RewritingConfig
from repro.workloads.dblp import generate_dblp_document

WORKLOAD = [
    "/dblp/article/title",
    "/dblp//article[journal]/author",
    "/dblp/inproceedings[booktitle]/title",
    "/dblp//article[volume > 10]/title",
    "/dblp/phdthesis/author",
]


def main() -> None:
    document = generate_dblp_document("2005", scale=2.0, seed=21, name="dblp")
    summary = build_summary(document)
    print(f"DBLP-like document: {document.size} nodes, summary {summary.size} nodes\n")

    views = [
        MaterializedView(
            parse_pattern("dblp(//article[ID](/?title[ID,V], /?author[ID,V], /?journal[ID,V], /?volume[ID,V]))",
                          name="v_articles"),
            document,
            name="v_articles",
        ),
        MaterializedView(
            parse_pattern("dblp(//inproceedings[ID](/?title[ID,V], /?booktitle[ID,V]))", name="v_inproc"),
            document,
            name="v_inproc",
        ),
        MaterializedView(
            parse_pattern("dblp(//phdthesis[ID](/?author[ID,V]))", name="v_thesis"),
            document,
            name="v_thesis",
        ),
    ]
    for view in views:
        print(f"materialised {view.name}: {len(view.relation)} rows")

    rewriter = Rewriter(summary, views, RewritingConfig(stop_at_first=True, time_budget_seconds=10.0))

    print("\nworkload:")
    for xpath in WORKLOAD:
        query = xpath_to_pattern(xpath, return_attributes=("ID", "V"), name=xpath)
        outcome = rewriter.rewrite(query)
        if not outcome.found:
            print(f"  {xpath:45s} -> no equivalent rewriting over the views")
            continue
        answer = rewriter.execute(outcome.best)
        direct = evaluate_pattern(query, document)
        status = "OK" if answer.same_contents(direct) else "MISMATCH"
        print(
            f"  {xpath:45s} -> {len(answer):3d} rows from "
            f"{'+'.join(sorted(set(outcome.best.views_used)))} [{status}]"
        )


if __name__ == "__main__":
    main()
