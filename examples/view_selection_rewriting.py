"""Answering a workload of XPath queries from a handful of materialised views.

A small "view selection" scenario: given one document, a few views are
materialised once, and a workload of XPath queries is answered purely from
the views (whenever an equivalent rewriting exists), checking every answer
against direct evaluation.

Run with::

    python examples/view_selection_rewriting.py
"""

from repro import Database, evaluate_pattern, xpath_to_pattern
from repro.errors import RewritingError
from repro.rewriting import RewritingConfig
from repro.workloads.dblp import generate_dblp_document

WORKLOAD = [
    "/dblp/article/title",
    "/dblp//article[journal]/author",
    "/dblp/inproceedings[booktitle]/title",
    "/dblp//article[volume > 10]/title",
    "/dblp/phdthesis/author",
]


def main() -> None:
    # scale 1.0 keeps the example (and the CI `examples` job) fast; raise it
    # for a larger corpus — the workload and views are scale-independent
    document = generate_dblp_document("2005", scale=1.0, seed=21, name="dblp")
    db = Database(
        document, config=RewritingConfig(stop_at_first=True, time_budget_seconds=10.0)
    )
    print(f"DBLP-like document: {document.size} nodes, summary {db.summary.size} nodes\n")

    for name, pattern in [
        ("v_articles",
         "dblp(//article[ID](/?title[ID,V], /?author[ID,V], /?journal[ID,V], /?volume[ID,V]))"),
        ("v_inproc", "dblp(//inproceedings[ID](/?title[ID,V], /?booktitle[ID,V]))"),
        ("v_thesis", "dblp(//phdthesis[ID](/?author[ID,V]))"),
    ]:
        view = db.create_view(pattern, name=name)
        print(f"materialised {view.name}: {len(view.relation)} rows")

    print("\nworkload:")
    for xpath in WORKLOAD:
        query = xpath_to_pattern(xpath, return_attributes=("ID", "V"), name=xpath)
        try:
            prepared = db.prepare(query)
        except RewritingError:
            print(f"  {xpath:45s} -> no equivalent rewriting over the views")
            continue
        answer = prepared.run()
        direct = evaluate_pattern(query, document)
        status = "OK" if answer.same_contents(direct) else "MISMATCH"
        views_used = "+".join(prepared.explain().views_used)
        print(f"  {xpath:45s} -> {len(answer):3d} rows from {views_used} [{status}]")
    db.close()


if __name__ == "__main__":
    main()
