"""Exploring structural summaries (Dataguides) across corpora.

Builds the summaries of all Table 1 corpora, prints their statistics, and
shows how summary constraints change containment answers (the /r//a//b vs
/r//b example of the paper).

Run with::

    python examples/dataguide_explorer.py
"""

from repro import are_equivalent, parse_pattern, summarize, summary_from_paths
from repro.experiments.table1 import TABLE1_DOCUMENTS
from repro.summary.dataguide import build_summary


def corpus_tour() -> None:
    print("Table 1 corpora and their summaries")
    print(f"{'corpus':>12} | {'doc nodes':>9} | {'|S|':>5} | {'strong':>6} | {'1-to-1':>6}")
    for name, generator in TABLE1_DOCUMENTS:
        document = generator(0.6)
        stats = summarize(document)
        print(
            f"{name:>12} | {stats.document_size:>9} | {stats.summary_size:>5} | "
            f"{stats.strong_edges:>6} | {stats.one_to_one_edges:>6}"
        )


def containment_demo() -> None:
    print("\nSummary constraints change containment answers")
    query = parse_pattern("r(//a(//b[R]))", name="/r//a//b")
    view = parse_pattern("r(//b[R])", name="/r//b")

    constrained = summary_from_paths(["/r", "/r/a", "/r/a/b"], name="b-only-under-a")
    loose = summary_from_paths(["/r", "/r/b", "/r/a", "/r/a/b"], name="b-anywhere")

    for summary in (constrained, loose):
        equivalent = are_equivalent(query, view, summary, check_attributes=False)
        print(f"  under {summary.name!r}: /r//a//b ≡S /r//b ? {equivalent}")


def strong_edge_demo() -> None:
    print("\nStrong edges (integrity constraints) enable more rewritings")
    from repro import is_contained

    strong = summary_from_paths(["/a", "/a/b", "/a/b/d", ("/a/f", True)])
    weak = summary_from_paths(["/a", "/a/b", "/a/b/d", "/a/f"])
    p1 = parse_pattern("a(//d[R])")
    p2 = parse_pattern("a(//d[R], /f)")
    print("  with a strong /a/f edge   :", is_contained(p1, p2, strong, check_attributes=False))
    print("  without the strong edge   :", is_contained(p1, p2, weak, check_attributes=False))


if __name__ == "__main__":
    corpus_tour()
    containment_demo()
    strong_edge_demo()
