"""The paper's running example on an XMark-like auction site.

Two materialised views (V1 stores item content fragments with nested
listitems, V2 stores item names) are combined to answer the nested XQuery of
the introduction — the rewriting uses summary reasoning, optional and nested
edges, structural identifiers and content navigation.

Run with::

    python examples/xmark_auction_site.py
"""

from repro import Database, evaluate_pattern, xquery_to_pattern
from repro.errors import RewritingError
from repro.workloads.xmark import generate_xmark_document

# The introduction's query, without its [//mail] filter: the two views below
# store names and listitem keywords but no mailbox data, so only the
# filter-free variant has an equivalent rewriting over them (the paper's
# narrative adds the mail check by looking inside a stored content attribute).
RUNNING_QUERY = """
    for $x in doc("XMark.xml")//item return
        <res> { $x/name/text(),
                for $y in $x//listitem return
                    <key> { $y//keyword } </key> } </res>
"""


def main() -> None:
    # a synthetic XMark document plays the role of XMark.xml
    document = generate_xmark_document(scale=1.0, seed=7, name="XMark")
    db = Database(document)
    print(f"XMark-like document: {document.size} nodes, summary: {db.summary.size} nodes")

    # the query of the introduction, translated into one extended tree pattern
    query = xquery_to_pattern(RUNNING_QUERY, name="intro-query")
    print("\nquery pattern:", query.to_text())

    # V1: item identifiers with their nested listitem keywords (optional+nested)
    # V2: item identifiers with their names
    v1 = db.create_view("site(//item[ID](//?~listitem[ID](//?keyword[C])))", name="V1")
    v2 = db.create_view("site(//item[ID](/?name[V]))", name="V2")
    print("V1 rows:", len(v1.relation), " V2 rows:", len(v2.relation))

    try:
        prepared = db.prepare(query)
    except RewritingError:
        print("\nno equivalent rewriting found with V1 and V2 alone")
        return
    print(f"\n{len(prepared.choice)} rewriting(s) found; the chosen plan:")
    print(prepared.explain().to_text())

    result = prepared.run()
    print("\nfirst rows of the rewritten answer:")
    print(result.to_table(max_rows=5))

    direct = evaluate_pattern(query, document)
    print("\nmatches direct evaluation:", result.same_contents(direct))
    db.close()


if __name__ == "__main__":
    main()
