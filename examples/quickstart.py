"""Quickstart: summaries, views, containment and rewriting in ten minutes.

Run with::

    python examples/quickstart.py
"""

from repro import (
    MaterializedView,
    Rewriter,
    build_summary,
    evaluate_pattern,
    is_contained,
    parse_parenthesized,
    parse_pattern,
)


def main() -> None:
    # 1. an XML document (compact parenthesized notation; parse_xml_string
    #    accepts regular XML markup as well)
    document = parse_parenthesized(
        'site(regions(asia('
        'item(name="pen" description(parlist(listitem(keyword="columbus"))) mailbox(mail(from="bob")))'
        'item(name="ink" description(parlist(listitem(keyword="gold"))))'
        ')))',
        name="catalog",
    )
    print(f"document: {document}")

    # 2. its structural summary (strong Dataguide) — one node per distinct path
    summary = build_summary(document)
    print(f"summary : {summary.size} nodes, {summary.strong_edge_count} strong edges")

    # 3. tree patterns: the view stores item IDs with their names; the query
    #    asks for exactly that
    view_pattern = parse_pattern("site(//item[ID](/name[V]))", name="item_names")
    query = parse_pattern("site(//item[ID](/name[V], /description))", name="query")

    # 4. containment under the summary: every item has a description here, so
    #    the query's extra branch is implied and the two patterns coincide
    print("query ⊆S view :", is_contained(query, view_pattern, summary, check_attributes=False))
    print("view ⊆S query :", is_contained(view_pattern, query, summary, check_attributes=False))

    # 5. materialise the view and rewrite the query over it
    view = MaterializedView(view_pattern, document, name="item_names")
    rewriter = Rewriter(summary, [view])
    outcome = rewriter.rewrite(query)
    print(f"\nrewritings found: {len(outcome.rewritings)}")
    print(outcome.best.describe())

    # 6. execute the rewriting and compare with direct evaluation
    from_views = rewriter.execute(outcome.best)
    direct = evaluate_pattern(query, document)
    print("\nanswer from the materialised view:")
    print(from_views.to_table())
    print("\nmatches direct evaluation:", from_views.same_contents(direct))


if __name__ == "__main__":
    main()
