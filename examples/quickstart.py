"""Quickstart: the ``Database`` façade in ten minutes.

One object owns the whole lifecycle — summary construction, view DDL with
incremental catalog maintenance, cost-based planning, prepared queries and
``EXPLAIN`` — so nothing here wires a summary, catalog, planner or executor
by hand.

Run with::

    python examples/quickstart.py
"""

from repro import Database, evaluate_pattern, parse_parenthesized, parse_pattern


def main() -> None:
    # 1. an XML document (compact parenthesized notation; parse_xml_string
    #    accepts regular XML markup as well)
    document = parse_parenthesized(
        'site(regions(asia('
        'item(name="pen" description(parlist(listitem(keyword="columbus"))) mailbox(mail(from="bob")))'
        'item(name="ink" description(parlist(listitem(keyword="gold"))))'
        ')))',
        name="catalog",
    )

    # 2. the session: builds the structural summary (strong Dataguide) and
    #    owns views, catalog, planner and executor from here on
    with Database(document) as db:
        print(f"session : {db}")
        print(f"summary : {db.summary.size} nodes")

        # 3. declare a materialised view: item IDs with their names.  The
        #    pattern DSL is parsed for us; the shared catalog is patched
        #    incrementally (no other view would be re-annotated).
        view = db.create_view("site(//item[ID](/name[V]))", name="item_names")
        print(f"view    : {view.name} with {len(view.relation)} rows")

        # 4. prepare a query once (parse + rewrite + cost-based plan), run it
        #    as often as we like.  Every item here has a description, so the
        #    query's extra branch is implied by the summary and the view
        #    answers it exactly.
        prepared = db.prepare(
            "site(//item[ID](/name[V], /description))", name="query"
        )
        answer = prepared.run()
        print("\nanswer from the materialised view:")
        print(answer.to_table())

        # 5. EXPLAIN ANALYZE: the chosen rewriting, per-operator estimated
        #    rows/cost, join order decisions, and measured rows/times
        print("\nwhat the planner did:")
        print(prepared.explain(analyze=True).to_text())

        # 6. sanity: the rewritten answer matches direct evaluation
        direct = evaluate_pattern(
            parse_pattern("site(//item[ID](/name[V], /description))", name="query"),
            document,
        )
        print("\nmatches direct evaluation:", answer.same_contents(direct))

        # 7. view DDL is cheap and safe: prepared queries re-plan themselves
        db.create_view("site(//keyword[ID,V])", name="keywords")
        print("after DDL, prepared query still answers:", len(prepared.run()), "rows")


if __name__ == "__main__":
    main()
