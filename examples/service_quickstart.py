"""Quickstart: the query service tier end to end, over one HTTP socket.

Boots a :class:`repro.QueryService` around a Database serving the XMark
auction document, then walks the whole API as a client: query, explain,
prepare/execute (watching DDL force a re-plan), live ingest, and the
observability surface (``/metrics``, ``/debug/traces``).

Every response is checked — a non-2xx status or a query answer that
diverges from the direct ``Database.query`` result exits non-zero, which
is what the CI ``service-smoke`` job keys on.

Run with::

    python examples/service_quickstart.py
"""

from __future__ import annotations

import sys

from repro import Database, MaterializedView, QueryService, ServiceClient, build_summary
from repro.errors import RewritingError
from repro.service.models import relation_to_payload
from repro.workloads.synthetic import seed_tag_views
from repro.workloads.xmark import generate_xmark_document, xmark_query_patterns

FAILURES: list[str] = []


def check(condition: bool, message: str) -> None:
    if not condition:
        FAILURES.append(message)
        print(f"FAIL    : {message}")


def main() -> int:
    # 1. a Database over the fig13 XMark document, views seeded per tag
    document = generate_xmark_document(scale=0.3, seed=548, name="xmark")
    summary = build_summary(document)
    views = [
        MaterializedView(pattern, document, name=f"seed{index}_{pattern.name}")
        for index, pattern in enumerate(seed_tag_views(summary))
    ]
    database = Database(document, views=views)
    print(f"session : {database}")

    # pick the first fig13 query the seed views can answer
    query_text = None
    for name, pattern in sorted(
        xmark_query_patterns().items(), key=lambda kv: int(kv[0][1:])
    ):
        try:
            database.plan_query(pattern)
        except RewritingError:
            continue
        query_text = pattern.to_text()
        print(f"query   : {name} = {query_text}")
        break
    if query_text is None:
        print("no fig13 query is answerable over the seed views")
        return 1
    expected = relation_to_payload(database.query(query_text))

    # 2. the service: a threaded stdlib HTTP server on an ephemeral port
    with QueryService(database) as service:
        print(f"serving : {service.url}")
        client = ServiceClient(service.url)

        # 3. POST /query — the answer must match the direct session answer
        status, body = client.post("/query", {"query": query_text})
        check(status == 200, f"/query -> {status}")
        check(
            body.get("result") == expected,
            "/query answer diverged from Database.query",
        )
        print(f"rows    : {body['result']['row_count']} "
              f"(trace {body['trace_id'][:8]}…)")

        # 4. POST /explain — the chosen plan with estimated vs actual rows
        status, body = client.post(
            "/explain", {"query": query_text, "analyze": True}
        )
        check(status == 200, f"/explain -> {status}")
        report = body["explain"]
        print(f"plan    : views={report['views_used']} "
              f"cost≈{report['chosen_cost']:.0f} "
              f"actual={report['actual_rows']} rows")

        # 5. prepare once, execute many; DDL in between forces a re-plan
        status, body = client.post("/prepare", {"query": query_text})
        check(status == 200, f"/prepare -> {status}")
        stmt_id = body["stmt_id"]
        status, body = client.post(f"/execute/{stmt_id}")
        check(status == 200, f"/execute -> {status}")
        check(body["result"] == expected, "prepared answer diverged")
        before = body["times_planned"]

        status, body = client.post(
            "/ddl",
            {"op": "create_view", "name": "extra_ids",
             "pattern": "site(//item[ID])"},
        )
        check(status == 200, f"/ddl create -> {status}")
        print(f"ddl     : created view 'extra_ids' "
              f"(views_version {body['views_version']})")

        status, body = client.post(f"/execute/{stmt_id}")
        check(status == 200, f"/execute after ddl -> {status}")
        check(body["result"] == expected, "post-DDL prepared answer diverged")
        check(
            body["times_planned"] == before + 1,
            "DDL did not force the prepared statement to re-plan",
        )
        print(f"replan  : times_planned {before} -> {body['times_planned']}")

        # 6. live ingest: a subtree no query matches — answers must not move
        status, body = client.post(
            "/ingest",
            {"op": "insert", "parent": "1",
             "subtree": ["memo", None, [["note", "service quickstart", []]]]},
        )
        check(status == 200, f"/ingest -> {status}")
        print(f"ingest  : inserted at dewey {body['dewey']} "
              f"({body['maintenance']['delta_applied']} extent deltas)")
        status, body = client.post("/query", {"query": query_text})
        check(status == 200, f"/query after ingest -> {status}")
        check(body["result"] == expected, "post-ingest answer diverged")

        # 7. the observability surface
        status, text = client.get("/metrics")
        check(status == 200, f"/metrics -> {status}")
        interesting = [
            line for line in text.splitlines()
            if line.startswith(("service_requests_total", "service_plan_cache_hit"))
        ]
        print("metrics :")
        for line in interesting:
            print(f"  {line}")

        status, body = client.get("/debug/traces")
        check(status == 200, f"/debug/traces -> {status}")
        spans = body["traces"][-1]
        print(f"trace   : {spans['name']} with "
              f"{len(spans['children'])} phase span(s)")

    database.close()
    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed")
        return 1
    print("\nall service checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
