#!/usr/bin/env python3
"""Line coverage of ``src/repro`` over the tier-1 suite, stdlib-only.

CI runs the real thing — ``pytest --cov=repro`` via ``pytest-cov`` (see the
``coverage`` job in ``.github/workflows/ci.yml``) — with a hard
``--cov-fail-under`` floor.  This script exists for environments without
``coverage`` installed: it measures the same line coverage with a
``sys.settrace`` tracer so the floor can be (re)calibrated anywhere::

    python tools/coverage_gate.py                  # measure, print report
    python tools/coverage_gate.py --fail-under 80  # gate (exit 1 below floor)
    python tools/coverage_gate.py -- -k ingest     # extra pytest args

The universe of measurable lines is derived from the compiled code objects
(``co_lines``), the same definition ``coverage.py`` uses, so the two
numbers track each other closely.  Lines executed only inside worker
*processes* (the parallel batch paths) are invisible to both tools here;
the floor is calibrated against what the in-process suite reaches.

Output: a per-file table on stdout plus ``coverage-gate.json`` next to the
repo root (total percentage, per-file detail) for artifact upload.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
PACKAGE = SRC / "repro"


def executable_lines(path: Path) -> set[int]:
    """All line numbers the compiler emits for a file (coverage's universe)."""
    try:
        code = compile(path.read_text(), str(path), "exec")
    except SyntaxError:
        return set()
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _, _, line in obj.co_lines():
            if line is not None:
                lines.add(line)
        for const in obj.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    # the compiler emits a synthetic line-0 entry for some module objects
    lines.discard(0)
    return lines


class LineTracer:
    """Collect executed (filename, lineno) pairs for files under one root."""

    def __init__(self, root: Path):
        self.prefix = str(root)
        self.hits: dict[str, set[int]] = {}

    def _local(self, frame, event, arg):
        if event == "line":
            self.hits[frame.f_code.co_filename].add(frame.f_lineno)
        return self._local

    def global_trace(self, frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(self.prefix):
            return None  # skip local tracing entirely for foreign frames
        self.hits.setdefault(filename, set())
        return self._local

    def install(self):
        threading.settrace(self.global_trace)
        sys.settrace(self.global_trace)

    def uninstall(self):
        sys.settrace(None)
        threading.settrace(None)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fail-under",
        type=float,
        default=None,
        help="exit 1 if total line coverage is below this percentage",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=REPO / "coverage-gate.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest (after --)",
    )
    args = parser.parse_args(argv)

    # mirror a repo-root pytest invocation: src for the package, the root
    # for the `tests.*` cross-imports some integration modules use
    sys.path.insert(0, str(REPO))
    sys.path.insert(0, str(SRC))
    import pytest  # deferred: sys.path must carry src first

    tracer = LineTracer(PACKAGE)
    tracer.install()
    try:
        exit_code = pytest.main(["-q", *args.pytest_args])
    finally:
        tracer.uninstall()
    if exit_code not in (0, pytest.ExitCode.NO_TESTS_COLLECTED):
        # still report: the tracer slows wall-clock-budgeted tests enough
        # to flip search-truncation A/B comparisons, which says nothing
        # about which lines ran
        print(
            f"WARNING: pytest exited {exit_code} under the tracer; the "
            f"coverage numbers below are still measured, but verify the "
            f"failures are tracer-induced (time budgets) before trusting them"
        )

    total_lines = 0
    total_hit = 0
    files = []
    for path in sorted(PACKAGE.rglob("*.py")):
        universe = executable_lines(path)
        hit = tracer.hits.get(str(path), set()) & universe
        total_lines += len(universe)
        total_hit += len(hit)
        percent = 100.0 * len(hit) / len(universe) if universe else 100.0
        files.append(
            {
                "file": str(path.relative_to(REPO)),
                "lines": len(universe),
                "covered": len(hit),
                "percent": round(percent, 1),
            }
        )

    total_percent = 100.0 * total_hit / total_lines if total_lines else 100.0
    width = max(len(f["file"]) for f in files)
    for entry in files:
        print(f"{entry['file']:<{width}}  {entry['covered']:>5}/{entry['lines']:<5} {entry['percent']:>6.1f}%")
    print(f"{'TOTAL':<{width}}  {total_hit:>5}/{total_lines:<5} {total_percent:>6.1f}%")

    args.report.write_text(
        json.dumps(
            {"total_percent": round(total_percent, 2), "files": files}, indent=2
        )
        + "\n"
    )
    print(f"report written to {args.report}")

    if args.fail_under is not None and total_percent < args.fail_under:
        print(
            f"FAIL: total line coverage {total_percent:.1f}% is below the "
            f"floor {args.fail_under:.1f}%"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
