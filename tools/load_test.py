#!/usr/bin/env python
"""Thread-pool load driver for the query service (no locust, no deps).

Boots a :class:`repro.QueryService` over a Figure 13 XMark workload (or
targets an already-running service via ``--url``), fires a fixed number of
``POST /query`` requests from a pool of client threads, and reports
end-to-end throughput plus client-observed latency quantiles::

    PYTHONPATH=src python tools/load_test.py --threads 4 --requests 200

Correctness is asserted, not sampled: every response must be 2xx and its
result payload must be *identical* to the serial
``Database.query`` answer for the same query (computed once, before the
storm, through the same relation codec).  Any error or row mismatch makes
the exit status non-zero — the bench artifact is only written for runs
whose answers were right.

The summary JSON goes to ``bench-results/service_latency.json`` (override
with ``--output``); it carries throughput and p50/p95/p99 latencies but —
deliberately — no ``*speedup`` field, so the CI bench-delta gate treats it
as informational rather than a regression-gated ratio.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import Database, MaterializedView, build_summary  # noqa: E402
from repro.errors import RewritingError  # noqa: E402
from repro.rewriting.algorithm import RewritingConfig  # noqa: E402
from repro.service.models import relation_to_payload  # noqa: E402
from repro.service.server import QueryService, ServiceClient  # noqa: E402
from repro.workloads.synthetic import seed_tag_views  # noqa: E402
from repro.workloads.xmark import (  # noqa: E402
    generate_xmark_document,
    xmark_query_patterns,
)

DEFAULT_OUTPUT = REPO_ROOT / "bench-results" / "service_latency.json"


def build_database(scale: float) -> Database:
    """A Database serving the rewritable slice of the fig13 workload."""
    document = generate_xmark_document(scale=scale, seed=548, name="xmark-service")
    summary = build_summary(document)
    views = [
        MaterializedView(pattern, document, name=f"seed{index}_{pattern.name}")
        for index, pattern in enumerate(seed_tag_views(summary))
    ]
    config = RewritingConfig(
        max_rewritings=2, max_plan_size=4, enable_unions=False,
        time_budget_seconds=30.0,
    )
    return Database(document, views=views, config=config)


def rewritable_queries(database: Database) -> dict[str, str]:
    """name → query text for every fig13 query the views can answer."""
    answerable = {}
    for name, pattern in sorted(
        xmark_query_patterns().items(), key=lambda kv: int(kv[0][1:])
    ):
        try:
            database.plan_query(pattern)
        except RewritingError:
            continue
        answerable[name] = pattern.to_text()
    return answerable


def quantile_ms(latencies: list[float], q: float) -> float:
    """Client-side quantile of a latency sample, in milliseconds."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    position = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[position] * 1000.0


def run_load(
    url: str,
    queries: dict[str, str],
    expected: dict[str, dict],
    threads: int,
    requests: int,
) -> dict:
    """Fire ``requests`` round-robin queries from ``threads`` clients."""
    names = list(queries)
    latencies: list[float] = []
    errors: list[str] = []
    mismatches: list[str] = []
    lock = threading.Lock()

    def one_request(index: int) -> None:
        client = _CLIENTS.client(url)
        name = names[index % len(names)]
        started = time.perf_counter()
        status, body = client.post("/query", {"query": queries[name]})
        elapsed = time.perf_counter() - started
        with lock:
            latencies.append(elapsed)
            if status != 200:
                errors.append(f"{name}: HTTP {status} {body}")
            elif body["result"] != expected[name]:
                mismatches.append(f"{name}: rows diverged from Database.query")

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=threads) as pool:
        list(pool.map(one_request, range(requests)))
    wall = time.perf_counter() - started
    return {
        "requests": requests,
        "threads": threads,
        "distinct_queries": len(names),
        "wall_seconds": wall,
        "throughput_rps": requests / wall if wall > 0 else 0.0,
        "latency_ms": {
            "mean": statistics.fmean(latencies) * 1000.0 if latencies else 0.0,
            "p50": quantile_ms(latencies, 0.50),
            "p95": quantile_ms(latencies, 0.95),
            "p99": quantile_ms(latencies, 0.99),
        },
        "errors": errors,
        "row_mismatches": mismatches,
    }


class _ClientPool:
    """One ServiceClient per worker thread (urllib openers are not shared)."""

    def __init__(self):
        self._local = threading.local()

    def client(self, url: str) -> ServiceClient:
        client = getattr(self._local, "client", None)
        if client is None or client.base_url != url.rstrip("/"):
            client = ServiceClient(url)
            self._local.client = client
        return client


_CLIENTS = _ClientPool()


def write_point(point: dict, output: pathlib.Path) -> None:
    """Atomic JSON write, mirroring the bench_writer fixture's contract."""
    output.parent.mkdir(parents=True, exist_ok=True)
    stamped = dict(point)
    stamped.setdefault("cpu_count", os.cpu_count() or 1)
    handle, tmp_name = tempfile.mkstemp(
        dir=output.parent, prefix=f".{output.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w") as tmp:
            tmp.write(json.dumps(stamped, indent=2))
        os.replace(tmp_name, output)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def probe_remote_queries(url: str) -> tuple[dict[str, str], dict[str, dict]]:
    """Discover answerable fig13 queries on a remote service, serially.

    One warm-up request per query: 422 (unanswerable) skips it, 200 pins
    its expected payload — during the storm every answer must match its
    own serial baseline, the strongest identity check available without
    direct access to the remote database.
    """
    client = ServiceClient(url)
    queries: dict[str, str] = {}
    expected: dict[str, dict] = {}
    for name, pattern in sorted(
        xmark_query_patterns().items(), key=lambda kv: int(kv[0][1:])
    ):
        text = pattern.to_text()
        status, body = client.post("/query", {"query": text})
        if status == 422:
            continue
        if status != 200:
            raise SystemExit(f"warm-up {name} failed: HTTP {status} {body}")
        queries[name] = text
        expected[name] = body["result"]
    return queries, expected


def run(
    url: str | None = None,
    scale: float = 0.5,
    threads: int = 4,
    requests: int = 100,
    output: pathlib.Path | None = None,
) -> dict:
    """The whole measurement; returns the summary point (and writes it).

    With ``url=None`` a service is booted in-process over the fig13
    workload and the serial expectations come from the *same* database the
    service wraps, queried directly before the storm.  With a ``url`` the
    expectations are pinned by serial warm-up responses instead.
    """
    if url is not None:
        queries, expected = probe_remote_queries(url)
        if not queries:
            raise SystemExit("the remote service answers no fig13 query")
        point = run_load(url, queries, expected, threads, requests)
        point["mode"] = "remote"
    else:
        database = build_database(scale)
        try:
            queries = rewritable_queries(database)
            if not queries:
                raise SystemExit(
                    "no fig13 query is rewritable over the seed views"
                )
            expected = {
                name: relation_to_payload(database.query(text))
                for name, text in queries.items()
            }
            with QueryService(database) as service:
                point = run_load(service.url, queries, expected, threads, requests)
        finally:
            database.close()
        point["mode"] = "self-booted"
        point["scale"] = scale
    point["benchmark"] = "service_latency"
    if output is not None:
        write_point(point, output)
    return point


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="target an already-running service instead of "
                             "self-booting one (identity is then pinned by "
                             "serial warm-up responses)")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="XMark document scale for the self-booted mode")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    options = parser.parse_args(argv)

    point = run(
        url=options.url,
        scale=options.scale,
        threads=options.threads,
        requests=options.requests,
        output=options.output,
    )
    print("BENCH_JSON: " + json.dumps(point))
    if point["errors"] or point["row_mismatches"]:
        for line in point["errors"] + point["row_mismatches"]:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print(
        f"{point['requests']} requests, {point['threads']} threads: "
        f"{point['throughput_rps']:.1f} req/s, "
        f"p50 {point['latency_ms']['p50']:.2f}ms, "
        f"p99 {point['latency_ms']['p99']:.2f}ms"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
