#!/usr/bin/env python
"""Internal-link checker for the markdown docs.

Scans ``README.md`` and every ``docs/*.md`` file for markdown links and
verifies that relative targets exist on disk.  External links (http/https/
mailto) and pure in-page anchors are skipped; a ``#fragment`` suffix on a
relative link is stripped before the existence check.

Used by the CI ``docs`` job and by ``tests/unit/test_docs.py``, so broken
cross-references fail tier-1 locally before they fail CI.

Exit status: 0 when every link resolves, 1 otherwise (offenders printed).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCED_CODE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
INLINE_CODE = re.compile(r"`[^`]*`")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root: Path) -> list[Path]:
    """README plus the docs tree, deterministic order."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def _prose(text: str) -> str:
    """Markdown text with code stripped — pattern DSL snippets like
    ``site(//item[ID,V](/name[V]))`` would otherwise parse as links."""
    return INLINE_CODE.sub("", FENCED_CODE.sub("", text))


def broken_links(root: Path) -> list[tuple[Path, str]]:
    """All (file, target) pairs whose relative target does not exist."""
    offenders: list[tuple[Path, str]] = []
    for path in doc_files(root):
        for target in LINK.findall(_prose(path.read_text(encoding="utf-8"))):
            if target.startswith(SKIP_PREFIXES):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                offenders.append((path, target))
    return offenders


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    offenders = broken_links(root)
    checked = len(doc_files(root))
    if offenders:
        for path, target in offenders:
            print(f"BROKEN: {path.relative_to(root)} -> {target}")
        print(f"{len(offenders)} broken link(s) across {checked} file(s)")
        return 1
    print(f"doc links OK ({checked} file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
