#!/usr/bin/env python3
"""Print the curated public-API doctest file list, one path per line.

``tests/unit/test_doctests.py`` owns the single source of truth — its
``DOCTEST_MODULES`` list.  The CI ``docs`` job runs::

    pytest --doctest-modules -q $(python tools/doctest_modules.py)

so the job can never drift from what tier-1 actually doctests — the old
failure mode where a module was added to one list but not the other.

Paths are printed relative to the repository root (the CI job's working
directory), in the list's order.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
TEST_DOCTESTS = ROOT / "tests" / "unit" / "test_doctests.py"


def doctest_module_paths() -> list[str]:
    """Repo-relative source paths of every module on the curated list."""
    # import the test module by file path: tests/ is not a package on
    # sys.path, and this must work from any working directory
    sys.path.insert(0, str(ROOT / "src"))
    spec = importlib.util.spec_from_file_location("_doctest_list", TEST_DOCTESTS)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    paths = []
    for listed in module.DOCTEST_MODULES:
        source = Path(listed.__file__).resolve()
        paths.append(source.relative_to(ROOT).as_posix())
    return paths


def main() -> int:
    for path in doctest_module_paths():
        print(path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
