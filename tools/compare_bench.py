#!/usr/bin/env python3
"""Diff two ``bench-results/`` directories and fail on speedup regressions.

The CI ``bench-delta`` job downloads the previous nightly ``bench-results``
artifact into one directory, the fresh run's results into another, and runs::

    python tools/compare_bench.py --old prev/ --new bench-results/ \
        --threshold 0.2 --summary "$GITHUB_STEP_SUMMARY"

For every ``*.json`` point in the new directory, every numeric field whose
name ends in ``speedup`` (top-level and inside a ``workloads`` list) is
compared against the same field in the previous run:

* ``REGRESSION`` — the ratio dropped by more than ``--threshold`` (default
  20 %); the script exits 1 so the job fails;
* ``OK`` — within the threshold (improvements included);
* ``NEW`` — no previous file or field to compare against (warn-only: the
  first nightly after a new benchmark lands must stay green);
* ``SKIPPED`` — the two runs report different ``cpu_count`` values, so the
  numbers come from different hardware shapes and a ratio diff would be
  noise, not signal.

A markdown table of every comparison goes to ``--summary`` (appended, the
``$GITHUB_STEP_SUMMARY`` contract) and to stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REGRESSION = "REGRESSION"
OK = "OK"
NEW = "NEW"
SKIPPED = "SKIPPED"


def iter_speedups(point: dict):
    """Yield ``(label, value)`` for every speedup field in one JSON point.

    Top-level numeric fields ending in ``speedup`` come first, then the
    per-workload fields of a ``workloads`` list, labelled
    ``<workload>:<field>`` so the two fig13/fig14 entries stay distinct.
    """
    for key in sorted(point):
        value = point[key]
        if key.endswith("speedup") and isinstance(value, (int, float)):
            yield key, float(value)
    for entry in point.get("workloads", ()):
        if not isinstance(entry, dict):
            continue
        name = entry.get("workload", "workload")
        for key in sorted(entry):
            value = entry[key]
            if key.endswith("speedup") and isinstance(value, (int, float)):
                yield f"{name}:{key}", float(value)


def load_point(path: Path) -> dict | None:
    try:
        point = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return point if isinstance(point, dict) else None


def compare_dirs(old_dir: Path | None, new_dir: Path, threshold: float) -> list[dict]:
    """One comparison row per speedup field of every new ``*.json`` point."""
    rows: list[dict] = []
    for new_path in sorted(new_dir.glob("*.json")):
        new_point = load_point(new_path)
        if new_point is None:
            continue
        old_point = None
        if old_dir is not None:
            old_candidate = old_dir / new_path.name
            if old_candidate.exists():
                old_point = load_point(old_candidate)
        hardware_mismatch = (
            old_point is not None
            and old_point.get("cpu_count") is not None
            and new_point.get("cpu_count") is not None
            and old_point.get("cpu_count") != new_point.get("cpu_count")
        )
        old_speedups = dict(iter_speedups(old_point)) if old_point else {}
        for label, new_value in iter_speedups(new_point):
            row = {
                "file": new_path.name,
                "metric": label,
                "new": new_value,
                "old": old_speedups.get(label),
            }
            if row["old"] is None:
                row["status"] = NEW
            elif hardware_mismatch:
                row["status"] = SKIPPED
                row["note"] = (
                    f"cpu_count {old_point.get('cpu_count')} -> "
                    f"{new_point.get('cpu_count')}"
                )
            elif new_value < row["old"] * (1.0 - threshold):
                row["status"] = REGRESSION
            else:
                row["status"] = OK
            rows.append(row)
    return rows


def render_markdown(rows: list[dict], threshold: float, had_old: bool) -> str:
    lines = ["## Bench delta", ""]
    if not had_old:
        lines.append(
            "_No previous `bench-results` artifact was found — every metric "
            "is reported as NEW and nothing can regress (warn-only run)._"
        )
        lines.append("")
    lines += [
        f"Regression threshold: a speedup dropping more than "
        f"{threshold:.0%} vs the previous run fails the job.",
        "",
        "| file | metric | previous | current | delta | status |",
        "| --- | --- | ---: | ---: | ---: | --- |",
    ]
    for row in rows:
        old = row["old"]
        if old is None:
            previous, delta = "—", "—"
        else:
            previous = f"{old:.2f}x"
            delta = f"{(row['new'] - old) / old:+.1%}" if old else "—"
        status = row["status"]
        if status == REGRESSION:
            status = f"**{status}**"
        if row.get("note"):
            status = f"{status} ({row['note']})"
        lines.append(
            f"| {row['file']} | {row['metric']} | {previous} "
            f"| {row['new']:.2f}x | {delta} | {status} |"
        )
    if not rows:
        lines.append("| _no `*.json` points found_ | | | | | |")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--old",
        type=Path,
        default=None,
        help="previous run's bench-results directory (omit or point at a "
        "missing directory for a warn-only run)",
    )
    parser.add_argument(
        "--new", type=Path, required=True, help="fresh bench-results directory"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="fractional speedup drop that counts as a regression "
        "(default: 0.2 = 20%%)",
    )
    parser.add_argument(
        "--summary",
        type=Path,
        default=None,
        help="markdown file to append the comparison table to "
        "(e.g. $GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args(argv)

    if not args.new.is_dir():
        print(f"error: --new directory {args.new} does not exist", file=sys.stderr)
        return 2
    old_dir = args.old if args.old is not None and args.old.is_dir() else None
    if args.old is not None and old_dir is None:
        print(f"note: no previous results at {args.old}; warn-only run")

    rows = compare_dirs(old_dir, args.new, args.threshold)
    table = render_markdown(rows, args.threshold, had_old=old_dir is not None)
    print(table)
    if args.summary is not None:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(table)

    regressions = [row for row in rows if row["status"] == REGRESSION]
    for row in regressions:
        print(
            f"REGRESSION: {row['file']} {row['metric']} "
            f"{row['old']:.2f}x -> {row['new']:.2f}x",
            file=sys.stderr,
        )
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
