"""Point-lookup benchmark: value-index probes vs. full extent scans.

The value-index tentpole exists for exactly one workload shape: *selective*
predicates over large materialised extents.  This benchmark measures it
end to end and records ``bench-results/point_lookup.json`` (uploaded by
the CI ``bench-smoke`` job, regression-gated on its ``*speedup`` fields by
``tools/compare_bench.py``):

* **ordered probe** — an equality at ~0.5% selectivity over a
  high-cardinality string column (above the bitmap threshold, so an
  :class:`~repro.views.indexes.OrderedIndex` bisects);
* **bitmap probe** — an equality over a low-cardinality column (a
  :class:`~repro.views.indexes.BitmapIndex` ORs row bitmaps).

Each is timed as repeated warm ``db.query(...)`` calls — plan cache hot,
index built, the steady state of a point-lookup service — against the same
plans *without* the pushdown transform (``rewriting.plan``: scan then
filter) on the same warm session.  Rows must be identical; the hard
assertion is the acceptance bar: selective equality probes at least **5×**
faster than the scan on the ordered path.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import Database, parse_parenthesized
from repro.algebra.execution import PlanExecutor
from repro.algebra.tuples import _hashable
from repro.views.indexes import INDEX_STATS

pytestmark = [pytest.mark.bench, pytest.mark.slow]

ITEMS = 50_000
"""Extent rows: big enough that a linear scan visibly loses to a probe."""

ORDERED_LABELS = 200
"""Distinct values of the high-cardinality column — past the bitmap
threshold (64), so its index is an OrderedIndex; equality selects 0.5%."""

BITMAP_LABELS = 25
"""Distinct values of the low-cardinality column — a BitmapIndex; equality
selects 4%."""

REPS = 15
"""Timed repetitions per path; the medians go into the artifact."""

MIN_ORDERED_SPEEDUP = 5.0
"""The acceptance bar: selective point lookups ≥ 5× over the full scan."""


def _median_seconds(run, reps=REPS):
    timings = []
    for _ in range(reps):
        start = time.perf_counter()
        run()
        timings.append(time.perf_counter() - start)
    timings.sort()
    return timings[len(timings) // 2]


@pytest.mark.benchmark(group="point-lookup")
def test_index_probe_beats_full_scan(bench_writer):
    document = parse_parenthesized(
        "site("
        + " ".join(
            f'item(name="k{i % ORDERED_LABELS:03d}" grp="g{i % BITMAP_LABELS}")'
            for i in range(ITEMS)
        )
        + ")"
    )
    db = Database(document)
    db.create_view("site(/item(/name[ID,V]))", name="names")
    db.create_view("site(/item(/grp[ID,V]))", name="groups")

    ordered_query = 'site(/item(/name[ID,V]{v="k123"}))'
    bitmap_query = 'site(/item(/grp[ID,V]{v="g7"}))'

    INDEX_STATS.reset()
    results = {}
    for label, query in [("ordered", ordered_query), ("bitmap", bitmap_query)]:
        prepared = db.prepare(query)
        planned = prepared.choice.best
        scan_plan = planned.rewriting.plan        # untransformed: scan + filter
        index_plan = planned.plan_operator        # pushdown: IndexScan probe

        index_result = prepared.run()             # warm: index built, cache hot
        scan_result = PlanExecutor(db.views).execute(scan_plan)
        assert [_hashable(r) for r in index_result.rows] == [
            _hashable(r) for r in scan_result.rows
        ], f"{label}: the index path must be row-identical to the scan"

        index_seconds = _median_seconds(
            lambda: PlanExecutor(db.views).execute(index_plan)
        )
        scan_seconds = _median_seconds(
            lambda: PlanExecutor(db.views).execute(scan_plan)
        )
        results[label] = {
            "rows": len(index_result),
            "index_seconds": index_seconds,
            "scan_seconds": scan_seconds,
            "speedup": scan_seconds / index_seconds if index_seconds else float("inf"),
        }

    assert INDEX_STATS.builds == 2, "one index per probed column"
    ordered = results["ordered"]
    bitmap = results["bitmap"]
    assert ordered["rows"] == ITEMS // ORDERED_LABELS
    assert bitmap["rows"] == ITEMS // BITMAP_LABELS

    # the acceptance bar: a ~0.5%-selectivity equality probe must beat the
    # full scan by 5× — the probe bisects 250 positions out of 50k rows,
    # the scan decodes and tests every row
    assert ordered["speedup"] >= MIN_ORDERED_SPEEDUP, (
        f"ordered point lookup ({ordered['index_seconds'] * 1000:.2f}ms) must "
        f"be at least {MIN_ORDERED_SPEEDUP}x faster than the full scan "
        f"({ordered['scan_seconds'] * 1000:.2f}ms); got {ordered['speedup']:.1f}x"
    )
    assert bitmap["speedup"] > 1.0, (
        f"bitmap lookup should beat the scan; got {bitmap['speedup']:.2f}x"
    )

    point = {
        "bench": "point_lookup",
        "rows": ITEMS,
        "reps": REPS,
        "ordered_labels": ORDERED_LABELS,
        "bitmap_labels": BITMAP_LABELS,
        "ordered_index_seconds": round(ordered["index_seconds"], 6),
        "ordered_scan_seconds": round(ordered["scan_seconds"], 6),
        "ordered_probe_speedup": round(ordered["speedup"], 2),
        "bitmap_index_seconds": round(bitmap["index_seconds"], 6),
        "bitmap_scan_seconds": round(bitmap["scan_seconds"], 6),
        "bitmap_probe_speedup": round(bitmap["speedup"], 2),
    }
    print(f"\nBENCH_JSON: {json.dumps(point)}")
    bench_writer("point_lookup.json", point)
    db.close()
