"""Benchmark for Figure 15: rewriting the XMark query patterns against the
seed + random view set (setup time, time to first rewriting, total time,
view-pruning ratio)."""

import pytest
from repro.experiments.fig15 import fig15_views, print_fig15, run_fig15
from repro.rewriting.algorithm import RewritingConfig, RewritingSearch

pytestmark = [pytest.mark.bench, pytest.mark.slow]


@pytest.mark.benchmark(group="fig15")
@pytest.mark.parametrize("query_name", ["Q1", "Q5", "Q6", "Q18", "Q19"])
def test_fig15_single_query_rewriting(
    benchmark, xmark_summary_bench, xmark_queries_bench, query_name
):
    """Rewriting time for representative XMark queries."""
    views = fig15_views(xmark_summary_bench, random_view_count=25)
    config = RewritingConfig(
        time_budget_seconds=3.0, max_rewritings=1, max_plan_size=8, enable_unions=False
    )

    def rewrite_once():
        search = RewritingSearch(
            xmark_queries_bench[query_name], xmark_summary_bench, views, config
        )
        search.run()
        return search.statistics

    stats = benchmark.pedantic(rewrite_once, rounds=1, iterations=1)
    first = (
        f"{stats.first_rewriting_seconds * 1000:.1f} ms"
        if stats.first_rewriting_seconds is not None
        else "none"
    )
    print(
        f"\n{query_name}: setup {stats.setup_seconds * 1000:.1f} ms, first {first}, "
        f"total {stats.total_seconds * 1000:.1f} ms, kept {stats.pruning_ratio:.0%} of views"
    )


@pytest.mark.benchmark(group="fig15")
def test_fig15_full_report(benchmark, xmark_summary_bench):
    """Print the full Figure 15 report (all 20 queries) once."""
    rows = benchmark.pedantic(
        run_fig15,
        kwargs={
            "summary": xmark_summary_bench,
            "random_view_count": 25,
            "time_budget_seconds": 2.0,
            "max_rewritings": 1,
        },
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 20
    print()
    print_fig15(rows)
