"""End-to-end parallel query answering: 1 vs N workers over shared extents.

The fig13 (XMark) and fig14 (DBLP) workloads are answered end to end —
rewriting, cost-based planning *and* plan execution — through
``Database.query_many(..., execute=True)``:

* **1 worker** — the sequential path: search, plan and execute in the
  driver process;
* **N workers** — the :class:`~repro.rewriting.batch.BatchEngine` pool with
  the shared :class:`~repro.views.ExtentStore`: every materialised extent is
  published to ``multiprocessing.shared_memory`` once, workers attach by
  manifest (no per-worker extent copies — asserted via the store's publish
  counter) and stream result rows back through the columnar codec.

Each rewritable query appears several times in the batch: repeats keep the
*rewriting* phase memo-cheap, so the measured gap is dominated by the
scan/join execution path this PR parallelised — the same hot path
``session_scaling.json`` and ``join_scaling.json`` measure.

Identity is asserted unconditionally: chosen plans must match plan-for-plan
(alias-insensitive fingerprints) and every result must be row-identical
across the modes.  The ≥ 2x wall-clock assertion arms on hosts with clear
physical headroom (≥ 2x WORKERS logical CPUs); hosts with at least WORKERS
logical CPUs assert an SMT-safe ≥ 1.3x floor; the speedup is recorded in
the JSON point regardless.  The summary also reports the
:class:`~repro.session.PlanCache` hit rate over a re-query pass — the
satellite observable for unprepared callers.

A third, execution-isolated measurement compares the executors themselves:
every chosen plan is run in-process under ``executor="tuple"`` (the
row-at-a-time oracle) and ``executor="vectorized"`` (the columnar batch
kernels), rows asserted identical, and the vectorized path must win by
≥ 1.2x — this floor is single-threaded, so it arms on every host.  The
point also records ``stream_batch_rows`` (the worker → parent result
window size) and ``decode_bytes_touched`` vs ``shared_extent_bytes`` — how
few payload bytes the lazy columnar decode actually reads when the plans
only scan the columns they need.

One BENCH JSON point is printed (``BENCH_JSON:`` prefix) and written to
``bench-results/query_parallel.json`` for the CI artifact upload.
"""

from __future__ import annotations

import json
import os
import random
import re
import time

import pytest

from repro import Database, MaterializedView, build_summary
from repro.algebra.execution import PlanExecutor
from repro.algebra.tuples import _hashable
from repro.rewriting.algorithm import RewritingConfig
from repro.rewriting.batch import STREAM_BATCH_ROWS
from repro.views.extent_store import AttachedExtents
from repro.workloads.dblp import generate_dblp_document
from repro.workloads.synthetic import (
    SyntheticPatternConfig,
    generate_random_pattern,
    generate_random_views,
    seed_tag_views,
)
from repro.workloads.xmark import generate_xmark_document, xmark_query_patterns

pytestmark = [pytest.mark.bench, pytest.mark.slow]

_ALIAS = re.compile(r"[@#]\d+")

WORKERS = 4
MIN_SPEEDUP = 2.0
SMT_MIN_SPEEDUP = 1.3
"""The floor on hosts with WORKERS..2x WORKERS logical CPUs, where SMT may
leave only WORKERS/2 physical cores under the pool."""
REPEATS = 12
"""How many times each rewritable query appears in the batch."""

AB_REPEATS = 3
"""Timing passes over the distinct plans in the tuple-vs-vectorized A/B."""
SINGLE_WORKER_MIN_SPEEDUP = 1.2
"""The vectorized executor must beat the tuple oracle by this much on one
worker — a single-threaded floor, armed on every host shape."""


def _query_labels(queries):
    labels = set()
    for query in queries:
        for node in query.root.iter_subtree():
            if node.label and node.label != "*":
                labels.add(node.label)
    return labels


def _materialised_views(summary, document, labels, random_view_count, seed):
    views = []
    for index, pattern in enumerate(seed_tag_views(summary)):
        if pattern.name.removeprefix("seed_") not in labels:
            continue
        views.append(
            MaterializedView(pattern, document, name=f"seed{index}_{pattern.name}")
        )
    for index, pattern in enumerate(
        generate_random_views(summary, count=random_view_count, seed=seed)
    ):
        views.append(MaterializedView(pattern, document, name=f"rand{index}"))
    return views


def _fingerprint(execution):
    """Alias-insensitive identity of one executed query."""
    return (
        execution.found,
        tuple(execution.views_used),
        _ALIAS.sub("@N", execution.plan_description or ""),
    )


def _row_identity(execution):
    if execution.result is None:
        return None
    return [_hashable(row) for row in execution.result.rows]


def _workload():
    """Both paper workloads, views materialised, rewritable queries only."""
    probe = RewritingConfig(
        max_rewritings=2, max_plan_size=4, enable_unions=False,
        time_budget_seconds=2.0,
    )
    config = RewritingConfig(
        max_rewritings=2, max_plan_size=4, enable_unions=False,
        time_budget_seconds=30.0,
    )
    databases = []

    xmark_doc = generate_xmark_document(scale=30.0, seed=548, name="xmark-qp")
    xmark_summary = build_summary(xmark_doc)
    xmark_queries = list(xmark_query_patterns().values())
    databases.append(
        (
            "fig13-xmark",
            Database(
                xmark_doc,
                views=_materialised_views(
                    xmark_summary, xmark_doc, _query_labels(xmark_queries),
                    random_view_count=8, seed=3,
                ),
                config=config,
            ),
            xmark_queries,
        )
    )

    dblp_doc = generate_dblp_document("2005", scale=30.0, seed=5, name="dblp-qp")
    dblp_summary = build_summary(dblp_doc)
    rng = random.Random(17)
    pattern_config = SyntheticPatternConfig(
        size=4,
        optional_probability=0.5,
        return_count=2,
        return_labels=("author", "title", "year"),
    )
    dblp_queries = [
        generate_random_pattern(dblp_summary, pattern_config, rng=rng, name=f"q{i}")
        for i in range(10)
    ]
    databases.append(
        (
            "fig14-dblp",
            Database(
                dblp_doc,
                views=_materialised_views(
                    dblp_summary, dblp_doc, _query_labels(dblp_queries),
                    random_view_count=6, seed=11,
                ),
                config=config,
            ),
            dblp_queries,
        )
    )

    workload = []
    for name, db, queries in databases:
        rewritable = [
            outcome.query
            for outcome in db.rewrite_many(queries, config=probe)
            if outcome.found
        ]
        assert rewritable, f"the {name} workload is degenerate"
        workload.append((name, db, rewritable * REPEATS))
    return workload


def _executor_ab(db, distinct):
    """Time every distinct chosen plan under both executors, in-process.

    Plans once through the session planner, asserts row identity between
    the tuple oracle and the vectorized kernels, then times ``AB_REPEATS``
    passes of pure execution per strategy.  A fresh :class:`PlanExecutor`
    per run keeps the per-plan result memo from carrying over; the columnar
    layer's batch and Dewey-key caches on the long-lived view relations do
    persist across runs — that steady state is exactly what a session
    answering a query stream sees.
    """
    plans = [db.prepare(query).plan.rewriting.plan for query in distinct]
    for plan in plans:
        oracle = PlanExecutor(db.views, executor="tuple").execute(plan)
        vectorized = PlanExecutor(db.views, executor="vectorized").execute(plan)
        assert [_hashable(row) for row in oracle.rows] == [
            _hashable(row) for row in vectorized.rows
        ], "vectorized execution must be row-identical to the tuple oracle"
    timings = {}
    for strategy in ("tuple", "vectorized"):
        start = time.perf_counter()
        for _ in range(AB_REPEATS):
            for plan in plans:
                PlanExecutor(db.views, executor=strategy).execute(plan)
        timings[strategy] = time.perf_counter() - start
    return plans, timings["tuple"], timings["vectorized"]


def _decode_bytes(store, plans):
    """Payload bytes a fresh attachment decodes running ``plans``.

    Column blocks decode lazily, so this is the header plus only the
    columns the plans actually scan — compare against
    ``store.manifest.total_bytes`` for the bytes a row-major eager decode
    would have touched."""
    attached = AttachedExtents.attach(store.manifest)
    try:
        for plan in plans:
            PlanExecutor(attached, executor="vectorized").execute(plan)
        return attached.decode_bytes_touched
    finally:
        attached.close()


@pytest.mark.benchmark(group="query-parallel")
def test_query_parallel_vs_single_worker(bench_writer):
    workload = _workload()
    cores = os.cpu_count() or 1
    point = {
        "bench": "query_parallel",
        "workers": WORKERS,
        "cpu_cores": cores,
        "repeats": REPEATS,
        "stream_batch_rows": STREAM_BATCH_ROWS,
        "workloads": [],
    }
    total_serial = total_parallel = 0.0
    total_tuple = total_vectorized = 0.0
    total_decode_bytes = total_extent_bytes = 0
    try:
        for name, db, queries in workload:
            start = time.perf_counter()
            serial = db.rewrite_many(queries, workers=1, execute=True)
            serial_seconds = time.perf_counter() - start

            start = time.perf_counter()
            parallel = db.rewrite_many(queries, workers=WORKERS, execute=True)
            parallel_seconds = time.perf_counter() - start

            assert [_fingerprint(e) for e in serial] == [
                _fingerprint(e) for e in parallel
            ], f"{name}: parallel execution must choose identical plans"
            for seq, par in zip(serial, parallel):
                assert _row_identity(seq) == _row_identity(par), (
                    f"{name}: parallel results must be row-identical"
                )

            store = db.extent_store
            materialised = sum(1 for view in db.views if view.is_materialized)
            assert store is not None and store.publish_count == materialised, (
                f"{name}: extents must be published exactly once per version"
            )

            # plan-cache observability: answer every distinct query twice
            # through the unprepared one-shot path
            distinct = list(dict.fromkeys(queries))
            for query in distinct * 2:
                db.query(query)
            cache_info = db.plan_cache.info()

            # executor A/B: same plans, tuple oracle vs columnar kernels,
            # plus the lazy-decode observable over a fresh attachment
            plans, tuple_seconds, vectorized_seconds = _executor_ab(db, distinct)
            decode_bytes = _decode_bytes(store, plans)

            total_serial += serial_seconds
            total_parallel += parallel_seconds
            total_tuple += tuple_seconds
            total_vectorized += vectorized_seconds
            total_decode_bytes += decode_bytes
            total_extent_bytes += store.manifest.total_bytes
            point["workloads"].append(
                {
                    "workload": name,
                    "views": len(db.views),
                    "queries": len(queries),
                    "distinct_queries": len(distinct),
                    "rows_returned": sum(len(e.result) for e in serial if e.result),
                    "serial_seconds": round(serial_seconds, 4),
                    "parallel_seconds": round(parallel_seconds, 4),
                    "speedup": round(serial_seconds / parallel_seconds, 2)
                    if parallel_seconds
                    else float("inf"),
                    "shared_extent_bytes": store.manifest.total_bytes,
                    "decode_bytes_touched": decode_bytes,
                    "tuple_executor_seconds": round(tuple_seconds, 4),
                    "vectorized_executor_seconds": round(vectorized_seconds, 4),
                    "single_worker_speedup": round(
                        tuple_seconds / vectorized_seconds, 2
                    )
                    if vectorized_seconds
                    else float("inf"),
                    "extents_published": store.publish_count,
                    "plan_cache": cache_info,
                    "plan_cache_hit_rate": round(
                        cache_info["hits"]
                        / max(cache_info["hits"] + cache_info["misses"], 1),
                        3,
                    ),
                }
            )
    finally:
        for _, db, _ in workload:
            db.close()

    speedup = total_serial / total_parallel if total_parallel else float("inf")
    single_speedup = (
        total_tuple / total_vectorized if total_vectorized else float("inf")
    )
    point["serial_seconds"] = round(total_serial, 4)
    point["parallel_seconds"] = round(total_parallel, 4)
    point["speedup"] = round(speedup, 2)
    point["tuple_executor_seconds"] = round(total_tuple, 4)
    point["vectorized_executor_seconds"] = round(total_vectorized, 4)
    point["single_worker_speedup"] = round(single_speedup, 2)
    point["decode_bytes_touched"] = total_decode_bytes
    point["shared_extent_bytes"] = total_extent_bytes
    for entry in point["workloads"]:
        print(
            f"\n{entry['workload']}: {entry['speedup']}x at {WORKERS} workers, "
            f"vectorized {entry['single_worker_speedup']}x over the tuple "
            f"oracle on one worker, "
            f"decoded {entry['decode_bytes_touched']} of "
            f"{entry['shared_extent_bytes']} shared bytes, "
            f"plan-cache hit rate {entry['plan_cache_hit_rate']:.1%} "
            f"({entry['plan_cache']['hits']} hits / "
            f"{entry['plan_cache']['misses']} misses)"
        )
    print(f"\nBENCH_JSON: {json.dumps(point)}")
    bench_writer("query_parallel.json", point)

    # the executor A/B is single-threaded, so its floor arms everywhere
    assert single_speedup >= SINGLE_WORKER_MIN_SPEEDUP, (
        f"vectorized execution only {single_speedup:.2f}x faster than the "
        f"tuple oracle on one worker "
        f"({total_tuple:.2f}s vs {total_vectorized:.2f}s)"
    )

    # same two-tier arming as the rewrite-parallel benchmark: logical CPUs
    # can hide SMT and contention, so the full 2x floor needs clear physical
    # headroom, WORKERS..2x WORKERS logical CPUs assert an SMT-safe 1.3x,
    # and identity above is asserted unconditionally on every host
    if cores >= 2 * WORKERS:
        assert speedup >= MIN_SPEEDUP, (
            f"{WORKERS}-worker execute-mode query_many only {speedup:.2f}x "
            f"faster than one worker on a {cores}-logical-CPU host "
            f"({total_serial:.2f}s vs {total_parallel:.2f}s)"
        )
    elif cores >= WORKERS:
        assert speedup >= SMT_MIN_SPEEDUP, (
            f"{WORKERS}-worker execute-mode query_many only {speedup:.2f}x "
            f"faster than one worker on a {cores}-logical-CPU host "
            f"(SMT-safe floor {SMT_MIN_SPEEDUP}x; "
            f"{total_serial:.2f}s vs {total_parallel:.2f}s)"
        )
    else:
        print(
            f"NOTE: host has {cores} logical CPU(s); the wall-clock floors "
            f"arm at >= {WORKERS} ({SMT_MIN_SPEEDUP}x) and >= {2 * WORKERS} "
            f"({MIN_SPEEDUP}x) and were skipped "
            f"(identity was asserted; speedup recorded: {speedup:.2f}x)"
        )
