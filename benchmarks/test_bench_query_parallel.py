"""End-to-end parallel query answering: 1 vs N workers over shared extents.

The fig13 (XMark) and fig14 (DBLP) workloads are answered end to end —
rewriting, cost-based planning *and* plan execution — through
``Database.query_many(..., execute=True)``:

* **1 worker** — the sequential path: search, plan and execute in the
  driver process;
* **N workers** — the :class:`~repro.rewriting.batch.BatchEngine` pool with
  the shared :class:`~repro.views.ExtentStore`: every materialised extent is
  published to ``multiprocessing.shared_memory`` once, workers attach by
  manifest (no per-worker extent copies — asserted via the store's publish
  counter) and stream result rows back through the columnar codec.

Each rewritable query appears several times in the batch: repeats keep the
*rewriting* phase memo-cheap, so the measured gap is dominated by the
scan/join execution path this PR parallelised — the same hot path
``session_scaling.json`` and ``join_scaling.json`` measure.

Identity is asserted unconditionally: chosen plans must match plan-for-plan
(alias-insensitive fingerprints) and every result must be row-identical
across the modes.  The ≥ 2x wall-clock assertion arms only on hosts with
clear physical headroom (≥ 2x WORKERS logical CPUs), following the PR 2
convention; the speedup is recorded in the JSON point regardless.  The
summary also reports the :class:`~repro.session.PlanCache` hit rate over a
re-query pass — the satellite observable for unprepared callers.

One BENCH JSON point is printed (``BENCH_JSON:`` prefix) and written to
``bench-results/query_parallel.json`` for the CI artifact upload.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import re
import time

import pytest

from repro import Database, MaterializedView, build_summary
from repro.algebra.tuples import _hashable
from repro.rewriting.algorithm import RewritingConfig
from repro.workloads.dblp import generate_dblp_document
from repro.workloads.synthetic import (
    SyntheticPatternConfig,
    generate_random_pattern,
    generate_random_views,
    seed_tag_views,
)
from repro.workloads.xmark import generate_xmark_document, xmark_query_patterns

pytestmark = [pytest.mark.bench, pytest.mark.slow]

_ALIAS = re.compile(r"[@#]\d+")

WORKERS = 4
MIN_SPEEDUP = 2.0
REPEATS = 12
"""How many times each rewritable query appears in the batch."""


def _query_labels(queries):
    labels = set()
    for query in queries:
        for node in query.root.iter_subtree():
            if node.label and node.label != "*":
                labels.add(node.label)
    return labels


def _materialised_views(summary, document, labels, random_view_count, seed):
    views = []
    for index, pattern in enumerate(seed_tag_views(summary)):
        if pattern.name.removeprefix("seed_") not in labels:
            continue
        views.append(
            MaterializedView(pattern, document, name=f"seed{index}_{pattern.name}")
        )
    for index, pattern in enumerate(
        generate_random_views(summary, count=random_view_count, seed=seed)
    ):
        views.append(MaterializedView(pattern, document, name=f"rand{index}"))
    return views


def _fingerprint(execution):
    """Alias-insensitive identity of one executed query."""
    return (
        execution.found,
        tuple(execution.views_used),
        _ALIAS.sub("@N", execution.plan_description or ""),
    )


def _row_identity(execution):
    if execution.result is None:
        return None
    return [_hashable(row) for row in execution.result.rows]


def _workload():
    """Both paper workloads, views materialised, rewritable queries only."""
    probe = RewritingConfig(
        max_rewritings=2, max_plan_size=4, enable_unions=False,
        time_budget_seconds=2.0,
    )
    config = RewritingConfig(
        max_rewritings=2, max_plan_size=4, enable_unions=False,
        time_budget_seconds=30.0,
    )
    databases = []

    xmark_doc = generate_xmark_document(scale=30.0, seed=548, name="xmark-qp")
    xmark_summary = build_summary(xmark_doc)
    xmark_queries = list(xmark_query_patterns().values())
    databases.append(
        (
            "fig13-xmark",
            Database(
                xmark_doc,
                views=_materialised_views(
                    xmark_summary, xmark_doc, _query_labels(xmark_queries),
                    random_view_count=8, seed=3,
                ),
                config=config,
            ),
            xmark_queries,
        )
    )

    dblp_doc = generate_dblp_document("2005", scale=30.0, seed=5, name="dblp-qp")
    dblp_summary = build_summary(dblp_doc)
    rng = random.Random(17)
    pattern_config = SyntheticPatternConfig(
        size=4,
        optional_probability=0.5,
        return_count=2,
        return_labels=("author", "title", "year"),
    )
    dblp_queries = [
        generate_random_pattern(dblp_summary, pattern_config, rng=rng, name=f"q{i}")
        for i in range(10)
    ]
    databases.append(
        (
            "fig14-dblp",
            Database(
                dblp_doc,
                views=_materialised_views(
                    dblp_summary, dblp_doc, _query_labels(dblp_queries),
                    random_view_count=6, seed=11,
                ),
                config=config,
            ),
            dblp_queries,
        )
    )

    workload = []
    for name, db, queries in databases:
        rewritable = [
            outcome.query
            for outcome in db.rewrite_many(queries, config=probe)
            if outcome.found
        ]
        assert rewritable, f"the {name} workload is degenerate"
        workload.append((name, db, rewritable * REPEATS))
    return workload


@pytest.mark.benchmark(group="query-parallel")
def test_query_parallel_vs_single_worker():
    workload = _workload()
    cores = os.cpu_count() or 1
    point = {
        "bench": "query_parallel",
        "workers": WORKERS,
        "cpu_cores": cores,
        "repeats": REPEATS,
        "workloads": [],
    }
    total_serial = total_parallel = 0.0
    try:
        for name, db, queries in workload:
            start = time.perf_counter()
            serial = db.rewrite_many(queries, workers=1, execute=True)
            serial_seconds = time.perf_counter() - start

            start = time.perf_counter()
            parallel = db.rewrite_many(queries, workers=WORKERS, execute=True)
            parallel_seconds = time.perf_counter() - start

            assert [_fingerprint(e) for e in serial] == [
                _fingerprint(e) for e in parallel
            ], f"{name}: parallel execution must choose identical plans"
            for seq, par in zip(serial, parallel):
                assert _row_identity(seq) == _row_identity(par), (
                    f"{name}: parallel results must be row-identical"
                )

            store = db.extent_store
            materialised = sum(1 for view in db.views if view.is_materialized)
            assert store is not None and store.publish_count == materialised, (
                f"{name}: extents must be published exactly once per version"
            )

            # plan-cache observability: answer every distinct query twice
            # through the unprepared one-shot path
            distinct = list(dict.fromkeys(queries))
            for query in distinct * 2:
                db.query(query)
            cache_info = db.plan_cache.info()

            total_serial += serial_seconds
            total_parallel += parallel_seconds
            point["workloads"].append(
                {
                    "workload": name,
                    "views": len(db.views),
                    "queries": len(queries),
                    "distinct_queries": len(distinct),
                    "rows_returned": sum(len(e.result) for e in serial if e.result),
                    "serial_seconds": round(serial_seconds, 4),
                    "parallel_seconds": round(parallel_seconds, 4),
                    "speedup": round(serial_seconds / parallel_seconds, 2)
                    if parallel_seconds
                    else float("inf"),
                    "shared_extent_bytes": store.manifest.total_bytes,
                    "extents_published": store.publish_count,
                    "plan_cache": cache_info,
                    "plan_cache_hit_rate": round(
                        cache_info["hits"]
                        / max(cache_info["hits"] + cache_info["misses"], 1),
                        3,
                    ),
                }
            )
    finally:
        for _, db, _ in workload:
            db.close()

    speedup = total_serial / total_parallel if total_parallel else float("inf")
    point["serial_seconds"] = round(total_serial, 4)
    point["parallel_seconds"] = round(total_parallel, 4)
    point["speedup"] = round(speedup, 2)
    for entry in point["workloads"]:
        print(
            f"\n{entry['workload']}: {entry['speedup']}x at {WORKERS} workers, "
            f"plan-cache hit rate {entry['plan_cache_hit_rate']:.1%} "
            f"({entry['plan_cache']['hits']} hits / "
            f"{entry['plan_cache']['misses']} misses)"
        )
    print(f"\nBENCH_JSON: {json.dumps(point)}")
    results_dir = pathlib.Path(__file__).resolve().parent.parent / "bench-results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "query_parallel.json").write_text(json.dumps(point, indent=2))

    # same arming rule as the rewrite-parallel benchmark: logical CPUs can
    # hide SMT and contention, so the wall-clock floor only applies with
    # clear physical headroom; identity above is asserted unconditionally
    if cores >= 2 * WORKERS:
        assert speedup >= MIN_SPEEDUP, (
            f"{WORKERS}-worker execute-mode query_many only {speedup:.2f}x "
            f"faster than one worker on a {cores}-logical-CPU host "
            f"({total_serial:.2f}s vs {total_parallel:.2f}s)"
        )
    else:
        print(
            f"NOTE: host has {cores} logical CPU(s); the >= {MIN_SPEEDUP}x "
            f"wall-clock assertion arms at >= {2 * WORKERS} and was skipped "
            f"(identity was asserted; speedup recorded: {speedup:.2f}x)"
        )
