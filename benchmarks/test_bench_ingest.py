"""Ingest-update benchmark: delta maintenance vs. full rematerialization.

The live-document tentpole claims incremental maintenance makes extents
cheap to keep correct: a single-subtree change splices the affected Dewey
region instead of re-evaluating the view over the whole document.  This
benchmark measures exactly that claim on the XMark workload and records
``bench-results/ingest_update.json`` (uploaded by the CI ``bench-smoke``
job; its ``*speedup`` field is regression-gated by
``tools/compare_bench.py``):

* **delta path** — ``MaterializedView.apply_delta`` after one subtree
  insert and one subtree delete (the splice must run: the status is
  asserted to be ``"delta"``);
* **rebuild path** — ``MaterializedView.materialize`` over the mutated
  document, the oracle every delta is row-identical to.

Each timed cycle performs the same document mutations, so the two paths
differ only in how the extent catches up.  The hard assertion is the
acceptance bar: the delta path at least **5×** faster than full
rematerialization for single-subtree changes.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import MaterializedView, XMLNode, build_summary, parse_pattern
from repro.algebra.tuples import _hashable
from repro.views.delta import SubtreeChange
from repro.workloads.xmark import generate_xmark_document

pytestmark = [pytest.mark.bench, pytest.mark.slow]

SCALE = 20.0
"""XMark scale factor — several thousand nodes, so rematerializing visibly
pays the whole-document evaluation the delta path avoids."""

VIEW_PATTERN = "site(//item[ID](/name[V]))"
"""A delta-eligible chain over the most populous XMark element."""

REPS = 15
"""Timed insert+delete cycles per path; the medians go into the artifact."""

MIN_DELTA_SPEEDUP = 5.0
"""The acceptance bar: single-subtree deltas ≥ 5× over rematerializing."""


def _median_seconds(run, reps=REPS):
    timings = []
    for _ in range(reps):
        start = time.perf_counter()
        run()
        timings.append(time.perf_counter() - start)
    timings.sort()
    return timings[len(timings) // 2]


@pytest.mark.benchmark(group="ingest-update")
def test_delta_maintenance_beats_rematerialization(bench_writer):
    document = generate_xmark_document(scale=SCALE, seed=548, name="xmark-ingest")
    view = MaterializedView(
        parse_pattern(VIEW_PATTERN, name="items"), document, name="items"
    )
    parent = document.nodes_on_path("/site/regions/asia")[0]
    serial = 0

    def subtree():
        nonlocal serial
        serial += 1
        return XMLNode("item", None, [XMLNode("name", f"bench-{serial}")])

    def delta_cycle():
        node = document.insert_subtree(parent, subtree())
        insert = SubtreeChange("insert", node.dewey, parent.dewey)
        assert view.apply_delta(document, insert) == "delta"
        detached = document.delete_subtree(node)
        delete = SubtreeChange("delete", detached.dewey, parent.dewey)
        assert view.apply_delta(document, delete) == "delta"

    def rebuild_cycle():
        node = document.insert_subtree(parent, subtree())
        view.materialize(document)
        document.delete_subtree(node)
        view.materialize(document)

    # correctness first: after a delta-maintained insert the extent must be
    # row-identical to a from-scratch materialization of the same document
    node = document.insert_subtree(parent, subtree())
    assert (
        view.apply_delta(document, SubtreeChange("insert", node.dewey, parent.dewey))
        == "delta"
    )
    oracle = MaterializedView(
        parse_pattern(VIEW_PATTERN, name="oracle"), document, name="oracle"
    )
    assert [_hashable(r) for r in view.relation.rows] == [
        _hashable(r) for r in oracle.relation.rows
    ], "delta maintenance must be row-identical to rematerialization"
    document.delete_subtree(node)
    view.apply_delta(document, SubtreeChange("delete", node.dewey, parent.dewey))

    delta_seconds = _median_seconds(delta_cycle)
    rebuild_seconds = _median_seconds(rebuild_cycle)
    speedup = rebuild_seconds / delta_seconds if delta_seconds else float("inf")

    assert speedup >= MIN_DELTA_SPEEDUP, (
        f"apply_delta ({delta_seconds * 1000:.2f}ms per insert+delete cycle) "
        f"must be at least {MIN_DELTA_SPEEDUP}x faster than rematerializing "
        f"({rebuild_seconds * 1000:.2f}ms); got {speedup:.1f}x"
    )

    point = {
        "bench": "ingest_update",
        "scale": SCALE,
        "document_nodes": document.size,
        "extent_rows": len(view.relation),
        "reps": REPS,
        "delta_seconds": round(delta_seconds, 6),
        "rebuild_seconds": round(rebuild_seconds, 6),
        "delta_speedup": round(speedup, 2),
        "summary_nodes": sum(1 for _ in build_summary(document).iter_nodes()),
    }
    print(f"\nBENCH_JSON: {json.dumps(point)}")
    bench_writer("ingest_update.json", point)
