"""Benchmark for Figure 14: containment on the DBLP summary plus the
optional-edge ablation (0% vs 50% optional edges)."""

import pytest
from repro.experiments.fig13 import run_fig13_synthetic_containment
from repro.experiments.fig14 import print_fig14, run_fig14

pytestmark = [pytest.mark.bench, pytest.mark.slow]


@pytest.mark.benchmark(group="fig14")
@pytest.mark.parametrize("optional_probability", [0.0, 0.5])
def test_fig14_optional_edge_ablation(benchmark, dblp_summary_bench, optional_probability):
    """Containment time with and without optional edges (the ~2x claim)."""
    rows = benchmark.pedantic(
        run_fig13_synthetic_containment,
        kwargs={
            "summary": dblp_summary_bench,
            "sizes": (3, 5),
            "return_counts": (1,),
            "patterns_per_size": 3,
            "return_labels": ("author", "title", "year"),
            "optional_probability": optional_probability,
        },
        rounds=1,
        iterations=1,
    )
    assert rows
    total = sum(row.positive_seconds + row.negative_seconds for row in rows)
    print(f"\noptional probability {optional_probability}: total {total * 1000:.2f} ms")


@pytest.mark.benchmark(group="fig14")
def test_fig14_full_report(benchmark, dblp_summary_bench):
    """Print the full Figure 14 report once."""
    result = benchmark.pedantic(
        run_fig14,
        kwargs={
            "summary": dblp_summary_bench,
            "sizes": (3, 5),
            "return_counts": (1,),
            "patterns_per_size": 3,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print_fig14(result)
