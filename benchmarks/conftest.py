"""Shared fixtures for the benchmark harness (one benchmark per paper artefact).

Everything under benchmarks/ belongs to tier-2: the collection hook below
stamps the ``bench`` and ``slow`` markers on every item (belt and braces on
top of the per-file ``pytestmark``), and the tier-1 configuration in
pyproject.toml (``testpaths = ["tests"]`` plus ``-m 'not bench and not
slow'``) keeps them out of a bare ``pytest -x -q``.  Run them explicitly::

    pytest benchmarks -m bench
"""

from __future__ import annotations

import pytest

from repro import build_summary
from repro.workloads.dblp import generate_dblp_document
from repro.workloads.xmark import generate_xmark_document, xmark_query_patterns


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.bench)
        item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def xmark_summary_bench():
    """The XMark summary shared by the Figure 13 / 15 benchmarks."""
    return build_summary(generate_xmark_document(scale=1.5, seed=548, name="xmark-bench"))


@pytest.fixture(scope="session")
def dblp_summary_bench():
    """The DBLP'05 summary used by the Figure 14 benchmark."""
    return build_summary(generate_dblp_document("2005", scale=2.0, seed=5, name="dblp-bench"))


@pytest.fixture(scope="session")
def xmark_queries_bench():
    """The 20 XMark query patterns."""
    return xmark_query_patterns()
