"""Shared fixtures for the benchmark harness (one benchmark per paper artefact).

Everything under benchmarks/ belongs to tier-2: the collection hook below
stamps the ``bench`` and ``slow`` markers on every item (belt and braces on
top of the per-file ``pytestmark``), and the tier-1 configuration in
pyproject.toml (``testpaths = ["tests"]`` plus ``-m 'not bench and not
slow'``) keeps them out of a bare ``pytest -x -q``.  Run them explicitly::

    pytest benchmarks -m bench
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import tempfile

import pytest

from repro import build_summary
from repro.workloads.dblp import generate_dblp_document
from repro.workloads.xmark import generate_xmark_document, xmark_query_patterns

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench-results"


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.bench)
        item.add_marker(pytest.mark.slow)


def _git_sha() -> str | None:
    """The commit the benchmark ran on (CI env first, then local git)."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return probe.stdout.strip() or None


@pytest.fixture(scope="session")
def bench_writer():
    """Write one BENCH JSON point to ``bench-results/<filename>``.

    Every point is stamped with ``cpu_count`` and ``git_sha`` so
    ``tools/compare_bench.py`` can refuse cross-hardware comparisons, and
    the write is atomic (tempfile in the target directory + ``os.replace``)
    so a benchmark killed mid-write can never leave a truncated JSON file
    for the CI artifact upload to ship.
    """

    def write(filename: str, point: dict) -> pathlib.Path:
        stamped = dict(point)
        stamped.setdefault("cpu_count", os.cpu_count() or 1)
        stamped.setdefault("git_sha", _git_sha())
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        target = RESULTS_DIR / filename
        handle, tmp_name = tempfile.mkstemp(
            dir=RESULTS_DIR, prefix=f".{filename}.", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as tmp:
                tmp.write(json.dumps(stamped, indent=2))
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return target

    return write


@pytest.fixture(scope="session")
def xmark_summary_bench():
    """The XMark summary shared by the Figure 13 / 15 benchmarks."""
    return build_summary(generate_xmark_document(scale=1.5, seed=548, name="xmark-bench"))


@pytest.fixture(scope="session")
def dblp_summary_bench():
    """The DBLP'05 summary used by the Figure 14 benchmark."""
    return build_summary(generate_dblp_document("2005", scale=2.0, seed=5, name="dblp-bench"))


@pytest.fixture(scope="session")
def xmark_queries_bench():
    """The 20 XMark query patterns."""
    return xmark_query_patterns()
