"""Scaling benchmark: naive per-query rewriting vs. the catalog + memo path.

A 50-view / 200-query synthetic workload (20 distinct query templates, each
repeated 10 times, shuffled) is rewritten twice:

* **naive** — one :class:`RewritingSearch` per query with ``use_catalog=False``
  and the containment memo bypassed: every query re-builds the summary index,
  re-copies and re-annotates every view, and re-decides every containment
  question from scratch (the seed behaviour);
* **catalog + memo** — :meth:`Rewriter.rewrite_many` over a shared
  :class:`ViewCatalog` with the containment memo on.

The two paths must produce identical rewritings, and the catalog path must
be at least 3x faster.  One BENCH JSON point is emitted on stdout (prefixed
``BENCH_JSON:``) and written to ``bench-results/rewrite_scaling.json`` so CI
can upload it as an artifact.
"""

from __future__ import annotations

import json
import re
import time

import pytest

from repro import build_summary
from repro.containment.core import (
    clear_containment_cache,
    containment_cache,
    containment_cache_disabled,
)
from repro.rewriting.algorithm import RewritingConfig
from repro.rewriting.rewriter import Rewriter
from repro.views.view import MaterializedView
from repro.workloads.synthetic import batch_rewriting_workload
from repro.workloads.xmark import generate_xmark_document

pytestmark = [pytest.mark.bench, pytest.mark.slow]

_ALIAS = re.compile(r"[@#]\d+")


def _fingerprint(outcome) -> list[tuple]:
    """Alias-insensitive identity of an outcome's rewritings."""
    return [
        (tuple(r.views_used), r.is_union, _ALIAS.sub("@N", r.plan.describe()))
        for r in outcome.rewritings
    ]


@pytest.mark.benchmark(group="rewrite-scaling")
def test_rewrite_scaling_catalog_vs_naive(bench_writer):
    summary = build_summary(
        generate_xmark_document(scale=1.0, seed=548, name="xmark-scaling")
    )
    view_patterns, queries = batch_rewriting_workload(
        summary, view_count=50, distinct_queries=20, repeat=10
    )
    views = [
        MaterializedView(pattern, name=f"v{index}_{pattern.name}")
        for index, pattern in enumerate(view_patterns)
    ]
    config = RewritingConfig(
        max_rewritings=1,
        stop_at_first=True,
        max_plan_size=4,
        enable_unions=False,
        time_budget_seconds=30.0,
    )

    naive = Rewriter(summary, views, config, use_catalog=False)
    clear_containment_cache()
    with containment_cache_disabled():
        start = time.perf_counter()
        naive_outcomes = [naive.rewrite(query) for query in queries]
        naive_seconds = time.perf_counter() - start

    fast = Rewriter(summary, views, config, use_catalog=True)
    clear_containment_cache()
    start = time.perf_counter()
    fast_outcomes = fast.rewrite_many(queries)
    fast_seconds = time.perf_counter() - start
    cache_info = containment_cache().info()

    assert [_fingerprint(o) for o in naive_outcomes] == [
        _fingerprint(o) for o in fast_outcomes
    ], "catalog + memo path must produce identical rewritings"

    rewritten = sum(1 for outcome in fast_outcomes if outcome.found)
    speedup = naive_seconds / fast_seconds if fast_seconds else float("inf")
    point = {
        "bench": "rewrite_scaling",
        "views": len(views),
        "queries": len(queries),
        "distinct_queries": 20,
        "queries_rewritten": rewritten,
        "naive_seconds": round(naive_seconds, 4),
        "catalog_seconds": round(fast_seconds, 4),
        "speedup": round(speedup, 2),
        "containment_cache": cache_info,
    }
    print(f"\nBENCH_JSON: {json.dumps(point)}")
    bench_writer("rewrite_scaling.json", point)

    assert speedup >= 3.0, (
        f"catalog + memo path only {speedup:.2f}x faster than the naive loop "
        f"({naive_seconds:.2f}s vs {fast_seconds:.2f}s)"
    )
