"""Benchmarks for Figure 13: containment on the XMark summary.

* per-query canonical-model sizes and self-containment (top plot),
* synthetic positive / negative containment by pattern size (bottom plot).
"""

import pytest
from repro.canonical import canonical_model
from repro.containment.core import containment_decision
from repro.experiments.fig13 import (
    print_fig13,
    run_fig13_query_containment,
    run_fig13_synthetic_containment,
)

pytestmark = [pytest.mark.bench, pytest.mark.slow]


@pytest.mark.benchmark(group="fig13-queries")
@pytest.mark.parametrize("query_name", ["Q1", "Q6", "Q7", "Q10", "Q14", "Q19"])
def test_fig13_query_self_containment(benchmark, xmark_summary_bench, xmark_queries_bench, query_name):
    """Self-containment time for representative XMark queries (Fig. 13 top)."""
    pattern = xmark_queries_bench[query_name]

    decision = benchmark(containment_decision, pattern, pattern, xmark_summary_bench)

    assert decision.contained
    model_size = len(canonical_model(pattern, xmark_summary_bench, max_trees=5000))
    print(f"\n{query_name}: |modS(p)| = {model_size}, trees checked = {decision.canonical_trees_checked}")


@pytest.mark.benchmark(group="fig13-synthetic")
@pytest.mark.parametrize("size", [3, 5, 7])
def test_fig13_synthetic_containment_by_size(benchmark, xmark_summary_bench, size):
    """Average pairwise containment time for random patterns of a given size."""
    rows = benchmark.pedantic(
        run_fig13_synthetic_containment,
        kwargs={
            "summary": xmark_summary_bench,
            "sizes": (size,),
            "return_counts": (1,),
            "patterns_per_size": 3,
        },
        rounds=1,
        iterations=1,
    )
    assert rows and rows[0].pattern_size == size
    row = rows[0]
    print(
        f"\nsize {size}: positive {row.positive_seconds * 1000:.2f} ms "
        f"({row.positive_tests} tests), negative {row.negative_seconds * 1000:.2f} ms "
        f"({row.negative_tests} tests)"
    )


@pytest.mark.benchmark(group="fig13-report")
def test_fig13_full_report(benchmark, xmark_summary_bench):
    """Print the full Figure 13 report (both series) once."""

    def build_report():
        query_rows = run_fig13_query_containment(xmark_summary_bench)
        synthetic_rows = run_fig13_synthetic_containment(
            xmark_summary_bench, sizes=(3, 5), return_counts=(1, 2), patterns_per_size=3
        )
        return query_rows, synthetic_rows

    query_rows, synthetic_rows = benchmark.pedantic(build_report, rounds=1, iterations=1)
    print()
    print_fig13(query_rows, synthetic_rows)
