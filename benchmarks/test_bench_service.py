"""Service-tier benchmark: HTTP request latency and throughput.

The thread-pool load driver (``tools/load_test.py``) boots a
:class:`repro.QueryService` over the Figure 13 XMark workload (seed tag
views, the rewritable query slice) and fires a fixed number of
``POST /query`` requests from concurrent client threads.  The recorded
point (``bench-results/service_latency.json``, uploaded by the CI
``bench-smoke`` job) carries throughput and client-observed p50/p95/p99
latency.

Correctness is asserted unconditionally, wall-clock is not: every response
must be 2xx and payload-identical to the serial ``Database.query`` answer
(the driver computes the expected payloads through the same relation codec
before the storm).  Latency itself is trend data — the point deliberately
records no ``*speedup`` field, so the bench-delta gate never turns service
latency noise into a red nightly.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))
from load_test import run  # noqa: E402

pytestmark = [pytest.mark.bench, pytest.mark.slow]

SCALE = 1.0
THREADS = 4
REQUESTS = 200


def test_service_latency_under_concurrent_load(bench_writer):
    point = run(scale=SCALE, threads=THREADS, requests=REQUESTS, output=None)

    # correctness first: every request answered, every answer identical to
    # the serial oracle
    assert point["errors"] == [], point["errors"]
    assert point["row_mismatches"] == [], point["row_mismatches"]
    assert point["requests"] == REQUESTS

    # sanity on the measurement itself
    assert point["distinct_queries"] > 0
    assert point["throughput_rps"] > 0
    latency = point["latency_ms"]
    assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]

    bench_writer("service_latency.json", point)
    print(
        f"\nservice latency: {point['throughput_rps']:.1f} req/s over "
        f"{THREADS} threads; p50 {latency['p50']:.2f}ms, "
        f"p95 {latency['p95']:.2f}ms, p99 {latency['p99']:.2f}ms "
        f"({point['distinct_queries']} distinct fig13 queries)"
    )
