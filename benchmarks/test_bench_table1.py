"""Benchmark for Table 1: document generation + summary construction.

The measured quantity is the summary-construction pass (the paper stresses
that strong Dataguides are built in linear time); the printed rows are the
Table 1 statistics for every corpus.
"""

import pytest
from repro import build_summary, summarize
from repro.experiments.table1 import TABLE1_DOCUMENTS, print_table1, run_table1

pytestmark = [pytest.mark.bench, pytest.mark.slow]


@pytest.mark.benchmark(group="table1")
def test_table1_summary_construction(benchmark):
    """Time the construction of the XMark summary (the largest corpus)."""
    generator = dict(TABLE1_DOCUMENTS)["XMark111"]
    document = generator(1.0)

    summary = benchmark(build_summary, document)

    stats = summarize(document, summary)
    assert stats.summary_size <= stats.document_size
    assert stats.strong_edges >= stats.one_to_one_edges


@pytest.mark.benchmark(group="table1")
def test_table1_all_rows(benchmark):
    """Regenerate every Table 1 row (document generation + summarisation)."""
    rows = benchmark.pedantic(run_table1, kwargs={"scale": 0.6}, rounds=1, iterations=1)
    assert len(rows) == len(TABLE1_DOCUMENTS)
    print()
    print_table1(rows)
