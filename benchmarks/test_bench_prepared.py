"""Session-layer benchmark: prepared queries and the persistent worker pool.

Two measurements over the ``Database`` façade, recorded together in
``bench-results/session_scaling.json`` (uploaded by the CI ``bench-smoke``
job):

* **prepared vs unprepared** — the Figure 13 XMark query patterns that have
  an equivalent rewriting over the seed tag views are answered repeatedly,
  once through ``db.query(...)`` (full parse + rewrite + plan + execute per
  call) and once through ``db.prepare(...)`` + repeated ``run()`` (plan
  once, execute many).  The per-call latency gap is the whole front half of
  the pipeline — exactly what a request-per-query service saves by holding
  prepared statements.  Both paths must return identical relations.
* **persistent vs cold pool** — the same batch of queries is pushed through
  ``db.query_many(..., workers=2)`` several times against one long-lived
  session (the :class:`~repro.rewriting.batch.BatchEngine` pool spins up
  once) and against a fresh session per batch (pool + per-worker catalog
  load paid every time).  Results must match batch for batch; the wall-clock
  gap is the pool start-up amortisation ``Database.close()`` manages.

Wall-clock assertions are deliberately soft (this records trend data): the
prepared path must beat the unprepared path, and the persistent pool must
beat cold pools — both by margins far wider than scheduler noise on any
host, because the saved work (rewriting search per call; process spawn +
catalog load per batch) dominates the measured loops by construction.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import Database
from repro.containment.core import clear_containment_cache
from repro.errors import RewritingError
from repro.rewriting.algorithm import RewritingConfig
from repro.workloads.synthetic import seed_tag_views
from repro.workloads.xmark import generate_xmark_document, xmark_query_patterns

pytestmark = [pytest.mark.bench, pytest.mark.slow]

REPEATS = 5
"""How many times each prepared / unprepared query is answered."""

MAX_QUERIES = 6
"""Cap on the answerable fig13 queries measured: the per-call gap is what
matters, and six queries × :data:`REPEATS` re-searches already put minutes
of unprepared work on the clock at paper scale."""

BATCHES = 3
"""How many ``query_many`` batches hit the persistent vs the cold pool."""

POOL_WORKERS = 2

CONFIG = RewritingConfig(
    stop_at_first=True,
    max_plan_size=4,
    enable_unions=False,
    time_budget_seconds=10.0,
)


def _session(document, named_view_patterns):
    database = Database(document, config=CONFIG)
    for name, pattern in named_view_patterns:
        database.create_view(pattern.copy(), name=name)
    return database


@pytest.mark.benchmark(group="session")
def test_prepared_vs_unprepared_and_pool_reuse(bench_writer):
    document = generate_xmark_document(scale=0.4, seed=548, name="xmark-session")
    database = Database(document, config=CONFIG)
    for index, pattern in enumerate(seed_tag_views(database.summary)):
        database.create_view(pattern, name=f"seed{index}_{pattern.name}")

    # ---- prepared vs unprepared over the fig13 query patterns ---------- #
    prepared_queries = []
    for name, pattern in sorted(
        xmark_query_patterns().items(), key=lambda kv: int(kv[0][1:])
    ):
        try:
            prepared_queries.append((name, pattern, database.prepare(pattern)))
        except RewritingError:
            continue  # not answerable from the seed tag views alone
        if len(prepared_queries) >= MAX_QUERIES:
            break
    assert prepared_queries, "no fig13 query is answerable over the seed views"

    clear_containment_cache()
    start = time.perf_counter()
    unprepared_rows = [
        len(database.query(pattern))
        for _, pattern, _ in prepared_queries
        for _ in range(REPEATS)
    ]
    unprepared_seconds = time.perf_counter() - start

    start = time.perf_counter()
    prepared_rows = [
        len(prepared.run())
        for _, _, prepared in prepared_queries
        for _ in range(REPEATS)
    ]
    prepared_seconds = time.perf_counter() - start

    assert prepared_rows == unprepared_rows, (
        "prepared and unprepared paths must return identical result sizes"
    )
    prepared_speedup = (
        unprepared_seconds / prepared_seconds if prepared_seconds else float("inf")
    )
    # the unprepared path re-runs the rewriting search every call; even with
    # a warm containment memo that dwarfs pure plan execution
    assert prepared_speedup > 1.0, (
        f"prepared execution ({prepared_seconds:.2f}s) should beat re-planning "
        f"every call ({unprepared_seconds:.2f}s)"
    )

    # ---- persistent pool vs cold pool over query_many ------------------ #
    # the batch queries are copies of catalogued view patterns: guaranteed
    # single-view rewritings, found immediately even by a cold-memo worker —
    # so worker budget truncation (the documented parallel caveat) cannot
    # make the persistent and cold runs diverge, whatever the host load
    view_patterns = [(view.name, view.pattern) for view in database.views]
    batch = [
        view.pattern.copy(name=f"batch_q{index}")
        for index, view in enumerate(database.views)
        if index % 3 == 0  # every third tag view: a ~24-query batch
    ]

    start = time.perf_counter()
    persistent_sizes = []
    for _ in range(BATCHES):
        persistent_sizes.append(
            [len(r) for r in database.query_many(batch, workers=POOL_WORKERS)]
        )
    persistent_seconds = time.perf_counter() - start
    database.close()

    start = time.perf_counter()
    cold_sizes = []
    for _ in range(BATCHES):
        cold = _session(document, view_patterns)
        cold_sizes.append(
            [len(r) for r in cold.query_many(batch, workers=POOL_WORKERS)]
        )
        cold.close()
    cold_seconds = time.perf_counter() - start

    assert persistent_sizes == cold_sizes, (
        "persistent-pool and cold-pool batches must return identical results"
    )
    pool_speedup = (
        cold_seconds / persistent_seconds if persistent_seconds else float("inf")
    )
    assert pool_speedup > 1.0, (
        f"a persistent pool ({persistent_seconds:.2f}s for {BATCHES} batches) "
        f"should beat cold pools ({cold_seconds:.2f}s): each cold batch pays "
        f"process spawn + per-worker catalog load"
    )

    point = {
        "bench": "session_scaling",
        "queries": len(prepared_queries),
        "repeats": REPEATS,
        "unprepared_seconds": round(unprepared_seconds, 4),
        "prepared_seconds": round(prepared_seconds, 4),
        "prepared_speedup": round(prepared_speedup, 2),
        "batches": BATCHES,
        "pool_workers": POOL_WORKERS,
        "persistent_pool_seconds": round(persistent_seconds, 4),
        "cold_pool_seconds": round(cold_seconds, 4),
        "pool_speedup": round(pool_speedup, 2),
    }
    print(f"\nBENCH_JSON: {json.dumps(point)}")
    bench_writer("session_scaling.json", point)
