"""Structural-join scaling: staircase merge vs. the nested-loop oracle.

Synthetic ancestor/descendant extents of growing size are joined through
``PlanExecutor`` under both strategies.  The extents mimic what view scans
actually deliver: Dewey-sorted ID columns (the sorted extent guarantee), one
descendant per ancestor so the output stays linear and the measured gap is
the join algorithm, not output materialisation.  The merge is also timed
once with the sorted annotation stripped, to show the sort-then-merge
fallback's position between the two.

The nested loop is ``O(l × r)``: at 10k×10k it walks 10⁸ Dewey pairs, which
is exactly the paper-scale regime where the seed executor and the cost
model's pricing disagreed.  The benchmark asserts result identity at every
size and a ≥ 5x merge speedup on the 10k×10k case, and writes all points to
``bench-results/join_scaling.json`` (uploaded by the ``bench-smoke`` CI
job).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.algebra.execution import PlanExecutor
from repro.algebra.operators import StructuralJoin, ViewScan
from repro.algebra.tuples import Column, Relation
from repro.patterns.pattern import Axis
from repro.xmltree.ids import DeweyID

pytestmark = [pytest.mark.bench, pytest.mark.slow]

SIZES = [1_000, 3_000, 10_000]
ASSERT_AT = 10_000
MIN_SPEEDUP = 5.0


class _Extent:
    def __init__(self, relation: Relation):
        self.relation = relation


def _extents(size: int) -> dict[str, _Extent]:
    """``size`` ancestors ``1.i`` and ``size`` descendants ``1.i.1``."""
    upper = Relation(
        [Column("ID1", kind="ID")],
        rows=[(DeweyID((1, i)),) for i in range(1, size + 1)],
    ).mark_sorted_by("ID1")
    lower = Relation(
        [Column("ID1", kind="ID")],
        rows=[(DeweyID((1, i, 1)),) for i in range(1, size + 1)],
    ).mark_sorted_by("ID1")
    return {"upper": _Extent(upper), "lower": _Extent(lower)}


def _plan() -> StructuralJoin:
    return StructuralJoin(
        left=ViewScan("upper", alias="u"),
        right=ViewScan("lower", alias="l"),
        left_column="u.ID1",
        right_column="l.ID1",
        axis=Axis.DESCENDANT,
    )


def _timed(views, strategy: str) -> tuple[float, Relation]:
    executor = PlanExecutor(views, structural_join_strategy=strategy)
    start = time.perf_counter()
    result = executor.execute(_plan())
    return time.perf_counter() - start, result


@pytest.mark.benchmark(group="structural-join")
def test_staircase_join_scaling(bench_writer):
    points = []
    for size in SIZES:
        views = _extents(size)
        merge_seconds, merge_result = _timed(views, "merge")

        # the sort-then-merge fallback: same rows, annotation stripped
        unsorted_views = _extents(size)
        for extent in unsorted_views.values():
            extent.relation.mark_sorted_by(None)
        fallback_seconds, fallback_result = _timed(unsorted_views, "merge")

        nested_seconds, nested_result = _timed(views, "nested-loop")

        assert merge_result.same_contents(nested_result), (
            f"merge result diverges from the oracle at size {size}"
        )
        assert fallback_result.same_contents(nested_result), (
            f"sort-then-merge result diverges from the oracle at size {size}"
        )
        assert len(merge_result) == size  # one descendant per ancestor

        speedup = nested_seconds / merge_seconds if merge_seconds else float("inf")
        points.append(
            {
                "left_rows": size,
                "right_rows": size,
                "output_rows": len(merge_result),
                "nested_loop_seconds": round(nested_seconds, 4),
                "merge_seconds": round(merge_seconds, 4),
                "sort_then_merge_seconds": round(fallback_seconds, 4),
                "speedup": round(speedup, 2),
            }
        )
        print(
            f"\n  {size}x{size}: nested-loop {nested_seconds:.3f}s, "
            f"merge {merge_seconds:.4f}s, sort+merge {fallback_seconds:.4f}s "
            f"({speedup:.0f}x)"
        )

    payload = {"bench": "join_scaling", "points": points}
    print(f"\nBENCH_JSON: {json.dumps(payload)}")
    bench_writer("join_scaling.json", payload)

    largest = next(p for p in points if p["left_rows"] == ASSERT_AT)
    assert largest["speedup"] >= MIN_SPEEDUP, (
        f"staircase merge only {largest['speedup']}x faster than the nested "
        f"loop on the {ASSERT_AT}x{ASSERT_AT} extents"
    )
