"""Parallel scaling benchmark: 1-worker vs N-worker ``rewrite_many``.

A 50-view / 200-query workload (same generator as the catalog-vs-naive
scaling benchmark, but with all 200 queries *distinct* — with the 20
repeated templates of that benchmark the containment memo collapses the
sequential run to a fraction of a second and there is nothing left to
parallelise) is rewritten twice through a summary-only ``Database`` session
(``Database.from_summary(...).rewrite_many``):

* **1 worker** — the sequential catalog + memo path (the PR 1 fast path);
* **N workers** — the :class:`~repro.rewriting.batch.BatchEngine` process
  pool, sharing the catalog through its persisted snapshot and merging the
  workers' containment memos back into the parent.

Both runs must produce plan-for-plan identical rewritings, compared with
alias-insensitive fingerprints (scan aliases come from per-process
counters).  That assertion is unconditional: the per-search wall-clock
budget (30 s) exceeds the observed per-query search time by more than two
orders of magnitude, so budget-truncation divergence between the modes
(the one documented caveat of the parallel path) cannot realistically
trigger here.  The wall-clock assertion is two-tier: hosts with clear
physical headroom (≥ 2x WORKERS logical CPUs) must show ≥ 2x, hosts with
at least WORKERS logical CPUs — where SMT can halve the effective core
count — must still show a ≥ 1.3x floor, and smaller hosts only record the
measured speedup.  Every run emits the JSON point (with the core count
recorded) so CI trend lines stay comparable across runner shapes.

One BENCH JSON point is printed (``BENCH_JSON:`` prefix) and written to
``bench-results/rewrite_parallel.json`` for the CI artifact upload.
"""

from __future__ import annotations

import json
import os
import re
import time

import pytest

from repro import Database, build_summary
from repro.containment.core import clear_containment_cache, containment_cache
from repro.rewriting.algorithm import RewritingConfig
from repro.views.view import MaterializedView
from repro.workloads.synthetic import batch_rewriting_workload
from repro.workloads.xmark import generate_xmark_document

pytestmark = [pytest.mark.bench, pytest.mark.slow]

_ALIAS = re.compile(r"[@#]\d+")

WORKERS = 4
MIN_SPEEDUP = 2.0
SMT_MIN_SPEEDUP = 1.3
"""The floor on hosts with WORKERS..2x WORKERS logical CPUs, where SMT may
leave only WORKERS/2 physical cores under the pool."""


def _fingerprint(outcome) -> list[tuple]:
    """Alias-insensitive identity of an outcome's rewritings."""
    return [
        (tuple(r.views_used), r.is_union, _ALIAS.sub("@N", r.plan.describe()))
        for r in outcome.rewritings
    ]


@pytest.mark.benchmark(group="rewrite-parallel")
def test_rewrite_parallel_vs_single_worker(bench_writer):
    summary = build_summary(
        generate_xmark_document(scale=1.0, seed=548, name="xmark-parallel")
    )
    view_patterns, queries = batch_rewriting_workload(
        summary, view_count=50, distinct_queries=200, repeat=1
    )
    views = [
        MaterializedView(pattern, name=f"v{index}_{pattern.name}")
        for index, pattern in enumerate(view_patterns)
    ]
    config = RewritingConfig(
        max_rewritings=1,
        stop_at_first=True,
        max_plan_size=4,
        enable_unions=False,
        time_budget_seconds=30.0,
    )
    database = Database.from_summary(summary, views=views, config=config)

    clear_containment_cache()
    start = time.perf_counter()
    serial_outcomes = database.rewrite_many(queries, workers=1)
    serial_seconds = time.perf_counter() - start

    clear_containment_cache()
    start = time.perf_counter()
    parallel_outcomes = database.rewrite_many(queries, workers=WORKERS)
    parallel_seconds = time.perf_counter() - start
    merged_cache = containment_cache().info()
    database.close()  # release the persistent worker pool

    assert [_fingerprint(o) for o in serial_outcomes] == [
        _fingerprint(o) for o in parallel_outcomes
    ], "parallel rewrite_many must produce plan-for-plan identical rewritings"

    cores = os.cpu_count() or 1
    rewritten = sum(1 for outcome in parallel_outcomes if outcome.found)
    speedup = serial_seconds / parallel_seconds if parallel_seconds else float("inf")
    point = {
        "bench": "rewrite_parallel",
        "views": len(views),
        "queries": len(queries),
        "distinct_queries": 200,
        "workers": WORKERS,
        "cpu_cores": cores,
        "queries_rewritten": rewritten,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(speedup, 2),
        "merged_containment_entries": merged_cache["size"],
    }
    print(f"\nBENCH_JSON: {json.dumps(point)}")
    bench_writer("rewrite_parallel.json", point)

    # os.cpu_count() reports *logical* CPUs: a 4-vCPU runner may be 2
    # physical cores with SMT, where 4 CPU-bound workers top out well below
    # 2x — and contended shared runners make even softer floors flaky.  The
    # full 2x floor therefore only arms with clear physical headroom
    # (>= 2x WORKERS logical CPUs); hosts with at least WORKERS logical
    # CPUs — the standard 4-vCPU CI runner — still assert an SMT-safe 1.3x
    # floor, so a parallel-path regression cannot hide behind runner shape.
    # Every run records the measured speedup in the JSON point for trend
    # monitoring, and the plan-identity assertion above is unconditional.
    if cores >= 2 * WORKERS:
        assert speedup >= MIN_SPEEDUP, (
            f"{WORKERS}-worker rewrite_many only {speedup:.2f}x faster than one "
            f"worker on a {cores}-logical-CPU host "
            f"({serial_seconds:.2f}s vs {parallel_seconds:.2f}s)"
        )
    elif cores >= WORKERS:
        assert speedup >= SMT_MIN_SPEEDUP, (
            f"{WORKERS}-worker rewrite_many only {speedup:.2f}x faster than one "
            f"worker on a {cores}-logical-CPU host (SMT-safe floor "
            f"{SMT_MIN_SPEEDUP}x; {serial_seconds:.2f}s vs {parallel_seconds:.2f}s)"
        )
    else:
        print(
            f"NOTE: host has {cores} logical CPU(s); the wall-clock floors "
            f"arm at >= {WORKERS} ({SMT_MIN_SPEEDUP}x) and >= {2 * WORKERS} "
            f"({MIN_SPEEDUP}x) and were skipped "
            f"(identity was asserted; speedup recorded: {speedup:.2f}x)"
        )
